//! Bounded MPMC admission queue with blocking and non-blocking ends.
//!
//! This is the runtime's backpressure mechanism: the queue has a fixed
//! capacity, producers either block ([`AdmissionQueue::push`]) or get
//! an immediate rejection ([`AdmissionQueue::try_push`]) when it is
//! full, and shard dispatchers consume from the other end. Closing the
//! queue rejects new work but lets consumers drain what was already
//! admitted, so every admitted query is answered even during shutdown.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Why a non-blocking push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load or retry.
    Full,
    /// The queue is closed; no new work is admitted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Deepest the queue has ever been — the backpressure witness.
    high_water: usize,
}

/// A bounded multi-producer multi-consumer queue.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("AdmissionQueue")
            .field("capacity", &self.capacity)
            .field("len", &st.items.len())
            .field("closed", &st.closed)
            .field("high_water", &st.high_water)
            .finish()
    }
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items at a time.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        AdmissionQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.state.lock().items.is_empty()
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.state.lock().high_water
    }

    /// Blocking push: waits while the queue is full. Returns the item
    /// back if the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                st.high_water = st.high_water.max(st.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut st);
        }
    }

    /// Non-blocking push: fails immediately with [`PushError::Full`]
    /// under backpressure instead of waiting.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut st = self.state.lock();
        if st.closed {
            return Err((item, PushError::Closed));
        }
        if st.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        st.items.push_back(item);
        st.high_water = st.high_water.max(st.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits for an item. Returns `None` only once the
    /// queue is closed **and** drained — consumers can treat `None` as
    /// "shut down now".
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    /// Moves up to `max` immediately-available items into `out` without
    /// blocking — the micro-batching hook: a dispatcher pops one item,
    /// then drains whatever else is already waiting.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut st = self.state.lock();
        let n = max.min(st.items.len());
        for _ in 0..n {
            out.push(st.items.pop_front().expect("len checked"));
        }
        if n > 0 {
            self.not_full.notify_all();
        }
        n
    }

    /// Closes the queue: new pushes fail, queued items remain poppable,
    /// and blocked producers/consumers wake up.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_high_water() {
        let q = AdmissionQueue::new(4);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.push(9).unwrap();
        assert_eq!(q.high_water(), 3); // never deeper than 3
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(9));
    }

    #[test]
    fn try_push_sheds_load_when_full() {
        let q = AdmissionQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = AdmissionQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3).unwrap_err(), 3);
        assert_eq!(q.try_push(4).unwrap_err().1, PushError::Closed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_producer_wakes_on_pop() {
        let q = Arc::new(AdmissionQueue::new(1));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        t.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn drain_respects_max() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.drain_into(&mut out, 10), 2);
        assert_eq!(q.drain_into(&mut out, 10), 0);
    }
}
