//! The wire protocol of the TCP front-end: newline-delimited JSON,
//! one request and one response per line.
//!
//! # Query requests
//!
//! ```json
//! {"target": "dysp", "evidence": {"asia": "yes", "smoke": 1}, "likelihood": {"xray": [0.4, 0.8]}}
//! ```
//!
//! `target` is a variable name (or numeric id); `evidence` values are
//! state names (or numeric indices); `likelihood` attaches soft
//! evidence as per-state weights. Response:
//!
//! ```json
//! {"target": "dysp", "states": ["yes", "no"], "marginal": [0.43, 0.57]}
//! ```
//!
//! or `{"error": "..."}`. Adding `"timing": true` to a query request
//! opts into a per-query timing pair on the success response —
//! `"queue_us"` (admission-queue wait, integer microseconds) and
//! `"exec_us"` (the propagation itself) plus the answering `"shard"`:
//!
//! ```json
//! {"target": "dysp", "states": ["yes", "no"], "marginal": [0.43, 0.57], "queue_us": 104, "exec_us": 87, "shard": 0}
//! ```
//!
//! Without the flag the response is byte-identical to the plain form,
//! so golden transcripts stay stable.
//!
//! An optional `"deadline_ms"` field attaches a completion deadline
//! (milliseconds, relative to admission). A query whose deadline
//! expires while queued is shed without ever starting a propagation; a
//! deadline firing mid-flight cancels the propagation cooperatively at
//! a task boundary. Either way the response is a deterministic
//! `{"error": "deadline_exceeded: …"}` line carrying the queue wait —
//! and a query that completes despite its deadline returns its normal,
//! bit-identical answer. Requests without the field take the exact
//! pre-deadline path.
//!
//! # Commands
//!
//! A request object carrying `"cmd"` instead of `"target"` is a
//! command:
//!
//! * `{"cmd": "stats"}` — a live [`RuntimeStats`] snapshot:
//!
//!   ```json
//!   {"stats": {"served": 12, "errors": 0, "queue_depth": 0,
//!     "queue_high_water": 3, "uptime_us": 52417, "mean_latency_us": 131,
//!     "p50_us": 131, "p95_us": 262, "p99_us": 262,
//!     "shards": [{"shard": 0, "served": 6, "errors": 0, "batches": 4,
//!       "busy_us": 410, "idle_us": 52007, "mean_latency_us": 120,
//!       "p50_us": 131, "p95_us": 262, "p99_us": 262,
//!       "arenas_allocated": 1}],
//!     "kernel_backend": "avx2"}}
//!   ```
//!
//!   `kernel_backend` names the SIMD kernel backend answering queries
//!   (`scalar`, `sse2`, `avx2`, or `portable`); all backends compute
//!   bit-identical tables. A `plan_cache` object with the kernel-plan
//!   cache counters follows when the served model compiles plans.
//!
//! * `{"cmd": "trace"}` — summaries of the most recently completed
//!   queries (oldest first, at most 64), each with its queue/exec
//!   split:
//!
//!   ```json
//!   {"trace": {"recent": [{"target": "dysp", "ok": true, "shard": 0,
//!     "queue_us": 104, "exec_us": 87}]}}
//!   ```
//!
//! * `{"cmd": "drain"}` — graceful shutdown: the server acks
//!   immediately with `{"ok":true,"draining":true}`, stops admitting
//!   new queries, answers everything already admitted, closes open
//!   sessions, and exits (bounded by its `--drain-timeout-ms`).
//!
//! Once any fault counter moves (deadline sheds, in-flight
//! cancellations, worker panics, supervised thread restarts), the
//! `stats` response grows a `"faults"` object —
//! `{"shed":N,"cancelled":N,"panics":N,"restarts":N}`; before that it
//! is omitted entirely, keeping fault-free transcripts byte-identical.
//!
//! # Session commands
//!
//! Stateful incremental sessions keep calibrated tables resident on
//! one shard between queries and answer evidence deltas by dirty-slice
//! propagation:
//!
//! ```json
//! {"cmd": "session-open"}                                      → {"session": 1}
//! {"cmd": "session-set", "session": 1, "var": "asia", "state": "yes"}  → {"ok": true}
//! {"cmd": "session-query", "session": 1, "target": "dysp"}
//!     → {"target": "dysp", "states": [...], "marginal": [...], "mode": "incremental", "dirty": 3}
//! {"cmd": "session-retract", "session": 1, "var": "asia"}      → {"ok": true, "removed": "yes"}
//! {"cmd": "session-close", "session": 1}                       → {"ok": true}
//! ```
//!
//! `mode` reports how the query was answered (`cached` /
//! `incremental` / `full`), and incremental answers carry the number
//! of re-collected cliques as `dirty` — both deterministic for a fixed
//! transcript, so session responses are golden-comparable. Unknown or
//! expired session ids answer `{"error": …}`. Once a session has been
//! opened, the `stats` response grows a `"sessions"` object
//! (open/opened/closed/expired/rejected counts plus the merged
//! cached-vs-incremental-vs-full query breakdown and dirty-clique
//! histogram); before that it is omitted entirely, keeping stateless
//! transcripts byte-identical.
//!
//! # Model commands
//!
//! When the server runs in registry mode (booted with `--model` or
//! `--model-budget-mb`), queries and `session-open` accept an optional
//! `"model"` field — a registry name (`"asia"`, resolved through its
//! alias) or an exact version tag (`"asia@v2"`). Responses to requests
//! that named a model echo the answering version as
//! `"model":"name@vN"`; requests without the field use the default
//! model and get the unadorned pre-registry response, so existing
//! clients and golden transcripts are untouched. Four commands manage
//! the registry over the wire:
//!
//! ```json
//! {"cmd": "model-load", "path": "/models/asia.bif", "name": "asia"}
//!     → {"ok":true,"model":"asia@v2","bytes":18572}
//! {"cmd": "model-swap", "name": "asia", "version": 1}
//!     → {"ok":true,"model":"asia@v1"}
//! {"cmd": "model-unload", "name": "asia", "version": 2}
//!     → {"ok":true,"unloaded":["asia@v2"]}
//! {"cmd": "model-list"}
//!     → {"models":[{"name":"asia","alias":1,"versions":[
//!          {"version":1,"bytes":18572,"served":41,"pinned":false}]}]}
//! ```
//!
//! `model-load` parses the BIF file server-side, compiles it, runs a
//! warmup query, and only then flips the alias — traffic on the old
//! version is never disturbed. `model-unload` without `"version"`
//! unloads every version and removes the name; unloaded versions stop
//! resolving immediately (new `session-open`s racing the unload get a
//! deterministic `model_unloading: name@vN` error) but keep serving
//! clients that already pinned them. Sessions pin the exact version
//! they opened against — `session-open` with a model answers
//! `{"session":N,"model":"name@vN"}` and every query on that session
//! is answered by that version, across any number of swaps. In
//! registry mode the `stats` response grows a `"registry"` object
//! (loads / evictions / swaps / resident and unlinked byte counts).
//!
//! All `*_us` fields are integer microseconds. The parser below is a
//! deliberately tiny recursive-descent JSON reader — the build
//! environment is offline, so no serde — covering exactly the grammar
//! the protocol uses.

use crate::metrics::RuntimeStats;
use crate::runtime::{QuerySummary, QueryTiming};
use evprop_core::Query;
use evprop_potential::{EvidenceSet, PotentialTable, VarId};
use evprop_registry::ModelInfo;

// The symbolic-name bridge lives in `evprop-registry` (one name table
// per loaded model); re-exported here so the serving API is unchanged.
pub use evprop_registry::{ModelNames, NumericNames};

// ---------------------------------------------------------------- JSON

/// A parsed JSON value (protocol subset: no exponents beyond `f64`'s
/// own parser, no unicode escapes beyond BMP `\uXXXX`).
///
/// Public so out-of-crate tooling (benchmarks, the golden smoke tests)
/// can inspect protocol lines and merge JSON reports without serde.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the protocol never needs integers wider than 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (first match wins).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` on missing keys and non-objects.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    /// Reads four hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("bad \\u escape"));
        }
        let text = std::str::from_utf8(hex).expect("hex digits are ASCII");
        u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            let ch = match code {
                                // A high surrogate must combine with a
                                // following `\uDC00`–`\uDFFF` escape into
                                // one supplementary-plane scalar; JSON has
                                // no other way to escape astral chars.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 5..self.pos + 7)
                                        != Some(&b"\\u"[..])
                                    {
                                        return Err(self.err("unpaired surrogate \\u escape"));
                                    }
                                    let low = self.hex4(self.pos + 7)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("unpaired surrogate \\u escape"));
                                    }
                                    self.pos += 6;
                                    char::from_u32(
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                    )
                                    .expect("combined surrogate pair is a scalar")
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("unpaired surrogate \\u escape"))
                                }
                                _ => char::from_u32(code).expect("non-surrogate BMP scalar"),
                            };
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar verbatim
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one complete JSON value (trailing characters are an error).
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser::new(src);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

// ------------------------------------------------------------ requests

fn resolve_var(names: &dyn ModelNames, v: &Json) -> Result<VarId, String> {
    match v {
        Json::Str(name) => names
            .var_id(name)
            .ok_or_else(|| format!("unknown variable '{name}'")),
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && (*n as usize) < names.num_vars() => {
            Ok(VarId(*n as u32))
        }
        other => Err(format!("bad variable reference: {other:?}")),
    }
}

fn resolve_state(names: &dyn ModelNames, var: VarId, v: &Json) -> Result<usize, String> {
    let card = names.num_states(var);
    match v {
        Json::Str(state) => names.state_index(var, state).ok_or_else(|| {
            format!(
                "unknown state '{state}' of variable '{}'",
                names.var_name(var)
            )
        }),
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && (*n as usize) < card => Ok(*n as usize),
        other => Err(format!("bad state reference: {other:?}")),
    }
}

/// One parsed request line: a query, an introspection command, or a
/// session command.
#[derive(Clone, Debug)]
pub enum Request {
    /// An inference request, with `timing` set when the client opted
    /// into the `queue_us`/`exec_us` pair on the response.
    Query {
        /// The query to answer.
        query: Query,
        /// Whether the response should carry the timing pair.
        timing: bool,
        /// Optional completion deadline (the `"deadline_ms"` field,
        /// relative to admission). Expired queries are shed or
        /// cancelled with a deterministic `deadline_exceeded` error;
        /// `None` (the default) leaves the pre-deadline path untouched.
        deadline: Option<std::time::Duration>,
    },
    /// `{"cmd": "stats"}` — a [`RuntimeStats`] snapshot.
    Stats,
    /// `{"cmd": "trace"}` — recent-query timing summaries.
    Trace,
    /// `{"cmd": "session-open"}` — open an incremental session.
    SessionOpen,
    /// `{"cmd": "session-set", "session": N, "var": …, "state": …}` —
    /// set hard evidence on a session (pending delta).
    SessionSet {
        /// The session id.
        session: u64,
        /// The observed variable.
        var: VarId,
        /// Its observed state.
        state: usize,
    },
    /// `{"cmd": "session-retract", "session": N, "var": …}` — retract
    /// a session's evidence on one variable.
    SessionRetract {
        /// The session id.
        session: u64,
        /// The variable to un-observe.
        var: VarId,
    },
    /// `{"cmd": "session-query", "session": N, "target": …}` — answer
    /// a posterior on a session via dirty-slice propagation.
    SessionQuery {
        /// The session id.
        session: u64,
        /// The queried variable.
        target: VarId,
    },
    /// `{"cmd": "session-close", "session": N}` — close a session.
    SessionClose {
        /// The session id.
        session: u64,
    },
    /// `{"cmd": "model-load", "path": …, "name": …}` — parse a BIF
    /// file server-side, compile and warm it up, and install it as the
    /// next version of `name` (the alias flips to it on success).
    /// Answers `{"ok":true,"model":"name@vN","bytes":B}`.
    ModelLoad {
        /// Filesystem path of the BIF file, as seen by the server.
        path: String,
        /// The registry name to install under.
        name: String,
    },
    /// `{"cmd": "model-unload", "name": …}` (all versions, removing
    /// the name) or `{… , "version": N}` (one version; the alias
    /// retargets to the highest survivor). Unloaded versions stop
    /// resolving immediately but stay alive for whoever already pinned
    /// them. Answers `{"ok":true,"unloaded":["name@vN", …]}`.
    ModelUnload {
        /// The registry name.
        name: String,
        /// One version, or `None` for every version of the name.
        version: Option<u32>,
    },
    /// `{"cmd": "model-list"}` — every registered name with its alias
    /// target and resident versions (bytes, served counts, pin state),
    /// sorted by name then version so transcripts are deterministic.
    /// Answers `{"models":[{"name":…,"alias":N,"versions":[…]}]}`.
    ModelList,
    /// `{"cmd": "model-swap", "name": …, "version": N}` — atomically
    /// retarget `name`'s alias to an already-resident version (roll
    /// forward or back without reloading). In-flight queries finish on
    /// whichever version they resolved. Answers
    /// `{"ok":true,"model":"name@vN"}`.
    ModelSwap {
        /// The registry name.
        name: String,
        /// The resident version to alias.
        version: u32,
    },
    /// `{"cmd": "drain"}` — graceful shutdown: stop admitting, answer
    /// everything already admitted, close sessions, then exit (bounded
    /// by the server's drain timeout). Acks immediately with
    /// `{"ok":true,"draining":true}`.
    Drain,
}

fn session_id(v: &Json) -> Result<u64, String> {
    match v.get("session") {
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 => {
            Ok(*n as u64)
        }
        Some(other) => Err(format!("bad session id: {other:?}")),
        None => Err("request is missing \"session\"".to_string()),
    }
}

fn session_var(names: &dyn ModelNames, v: &Json, key: &str) -> Result<VarId, String> {
    resolve_var(
        names,
        v.get(key)
            .ok_or_else(|| format!("request is missing \"{key}\""))?,
    )
}

fn string_field(v: &Json, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!("\"{key}\" must be a string, got {other:?}")),
        None => Err(format!("request is missing \"{key}\"")),
    }
}

fn version_field(v: &Json) -> Result<Option<u32>, String> {
    match v.get("version") {
        None => Ok(None),
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 1.0 && *n <= u32::MAX as f64 => {
            Ok(Some(*n as u32))
        }
        Some(other) => Err(format!("bad model version: {other:?}")),
    }
}

/// Extracts the optional `"model"` field of a query or `session-open`
/// request: a registry name (`"asia"`) or exact tag (`"asia@v2"`).
/// `None` means the server's default model — requests without the
/// field behave exactly as before the registry existed.
///
/// # Errors
///
/// A message when the field is present but not a string.
pub fn request_model(v: &Json) -> Result<Option<String>, String> {
    match v.get("model") {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!("\"model\" must be a string, got {other:?}")),
    }
}

/// The session id a session-addressed command (`session-set` /
/// `session-retract` / `session-query` / `session-close`) targets, if
/// this request is one. The multi-model front-end uses it to interpret
/// and format the command against the names of the model that session
/// pinned — which need not be the server's default.
pub fn request_session(v: &Json) -> Option<u64> {
    match v.get("cmd") {
        Some(Json::Str(c))
            if matches!(
                c.as_str(),
                "session-set" | "session-retract" | "session-query" | "session-close"
            ) => {}
        _ => return None,
    }
    match v.get("session") {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Parses one request line: either an inference query or a `"cmd"`
/// request (`stats`, `trace`, `session-*`, `model-*`).
///
/// # Errors
///
/// A human-readable message on malformed JSON, unknown commands or
/// names, or out-of-range indices — intended to be echoed back via
/// [`format_error`].
pub fn parse_request_line(line: &str, names: &dyn ModelNames) -> Result<Request, String> {
    let v = parse_json(line)?;
    parse_request_value(&v, names)
}

/// Parses an already-parsed request object against `names` — the
/// multi-model front-end parses the JSON once, resolves the optional
/// [`request_model`] field to a registry handle, and then interprets
/// the request against *that* model's name table.
///
/// # Errors
///
/// As [`parse_request_line`].
pub fn parse_request_value(v: &Json, names: &dyn ModelNames) -> Result<Request, String> {
    if let Some(cmd) = v.get("cmd") {
        return match cmd {
            Json::Str(c) if c == "stats" => Ok(Request::Stats),
            Json::Str(c) if c == "trace" => Ok(Request::Trace),
            Json::Str(c) if c == "session-open" => Ok(Request::SessionOpen),
            Json::Str(c) if c == "session-set" => {
                let session = session_id(v)?;
                let var = session_var(names, v, "var")?;
                let state = resolve_state(
                    names,
                    var,
                    v.get("state").ok_or("request is missing \"state\"")?,
                )?;
                Ok(Request::SessionSet {
                    session,
                    var,
                    state,
                })
            }
            Json::Str(c) if c == "session-retract" => Ok(Request::SessionRetract {
                session: session_id(v)?,
                var: session_var(names, v, "var")?,
            }),
            Json::Str(c) if c == "session-query" => Ok(Request::SessionQuery {
                session: session_id(v)?,
                target: session_var(names, v, "target")?,
            }),
            Json::Str(c) if c == "session-close" => Ok(Request::SessionClose {
                session: session_id(v)?,
            }),
            Json::Str(c) if c == "model-load" => Ok(Request::ModelLoad {
                path: string_field(v, "path")?,
                name: string_field(v, "name")?,
            }),
            Json::Str(c) if c == "model-unload" => Ok(Request::ModelUnload {
                name: string_field(v, "name")?,
                version: version_field(v)?,
            }),
            Json::Str(c) if c == "model-list" => Ok(Request::ModelList),
            Json::Str(c) if c == "model-swap" => {
                let version = version_field(v)?.ok_or("request is missing \"version\"")?;
                Ok(Request::ModelSwap {
                    name: string_field(v, "name")?,
                    version,
                })
            }
            Json::Str(c) if c == "drain" => Ok(Request::Drain),
            other => Err(format!(
                "unknown command {other:?} (expected \"stats\", \"trace\", \"drain\", \
                 \"session-open\"/\"session-set\"/\"session-retract\"/\"session-query\"/\
                 \"session-close\", or \
                 \"model-load\"/\"model-unload\"/\"model-list\"/\"model-swap\")"
            )),
        };
    }
    let timing = matches!(v.get("timing"), Some(Json::Bool(true)));
    let deadline = deadline_field(v)?;
    Ok(Request::Query {
        query: query_from_json(v, names)?,
        timing,
        deadline,
    })
}

/// Parses the optional `"deadline_ms"` field of a query request: a
/// non-negative integer number of milliseconds, relative to admission.
fn deadline_field(v: &Json) -> Result<Option<std::time::Duration>, String> {
    match v.get("deadline_ms") {
        None => Ok(None),
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 => {
            Ok(Some(std::time::Duration::from_millis(*n as u64)))
        }
        Some(other) => Err(format!(
            "bad \"deadline_ms\": {other:?} (expected a non-negative integer of milliseconds)"
        )),
    }
}

/// Parses one request line into a [`Query`] (queries only — commands
/// are rejected; the TCP front-end uses [`parse_request_line`]).
///
/// # Errors
///
/// A human-readable message on malformed JSON, unknown names, or
/// out-of-range indices — intended to be echoed back via
/// [`format_error`].
pub fn parse_request(line: &str, names: &dyn ModelNames) -> Result<Query, String> {
    let v = parse_json(line)?;
    query_from_json(&v, names)
}

fn query_from_json(v: &Json, names: &dyn ModelNames) -> Result<Query, String> {
    let target = resolve_var(
        names,
        v.get("target").ok_or("request is missing \"target\"")?,
    )?;
    let mut evidence = EvidenceSet::new();
    if let Some(obj) = v.get("evidence") {
        let Json::Obj(fields) = obj else {
            return Err("\"evidence\" must be an object".to_string());
        };
        for (var_name, state) in fields {
            let var = resolve_var(names, &Json::Str(var_name.clone()))?;
            let s = resolve_state(names, var, state)?;
            evidence.observe(var, s);
        }
    }
    if let Some(obj) = v.get("likelihood") {
        let Json::Obj(fields) = obj else {
            return Err("\"likelihood\" must be an object".to_string());
        };
        for (var_name, weights) in fields {
            let var = resolve_var(names, &Json::Str(var_name.clone()))?;
            let Json::Arr(items) = weights else {
                return Err(format!("likelihood of '{var_name}' must be an array"));
            };
            if items.len() != names.num_states(var) {
                return Err(format!(
                    "likelihood of '{var_name}' needs {} weights, got {}",
                    names.num_states(var),
                    items.len()
                ));
            }
            let ws: Vec<f64> = items
                .iter()
                .map(|w| match w {
                    Json::Num(x) if *x >= 0.0 => Ok(*x),
                    other => Err(format!("bad likelihood weight: {other:?}")),
                })
                .collect::<Result<_, _>>()?;
            evidence.observe_likelihood(var, ws);
        }
    }
    Ok(Query::new(target, evidence))
}

// ----------------------------------------------------------- responses

/// Formats a successful answer as one response line (no trailing
/// newline). Floats use Rust's shortest-roundtrip formatting, so the
/// output is deterministic — the golden-file smoke test depends on it.
pub fn format_response(names: &dyn ModelNames, target: VarId, marginal: &PotentialTable) -> String {
    let mut out = String::from("{\"target\":\"");
    escape_into(&mut out, &names.var_name(target));
    out.push_str("\",\"states\":[");
    for s in 0..names.num_states(target) {
        if s > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, &names.state_name(target, s));
        out.push('"');
    }
    out.push_str("],\"marginal\":[");
    for (i, p) in marginal.data().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{p}"));
    }
    out.push_str("]}");
    out
}

/// Formats a successful answer with the opt-in timing pair appended:
/// the plain [`format_response`] line plus `"queue_us"`, `"exec_us"`,
/// and `"shard"` fields (integer microseconds).
pub fn format_response_timed(
    names: &dyn ModelNames,
    target: VarId,
    marginal: &PotentialTable,
    timing: &QueryTiming,
) -> String {
    let mut out = format_response(names, target, marginal);
    out.pop(); // reopen the object: drop the trailing '}'
    out.push_str(&format!(
        ",\"queue_us\":{},\"exec_us\":{},\"shard\":{}}}",
        micros(timing.queue),
        micros(timing.exec),
        timing.shard
    ));
    out
}

/// Formats a successful `session-open` as one response line:
/// `{"session":N}`.
pub fn format_session_opened(id: u64) -> String {
    format!("{{\"session\":{id}}}")
}

/// Formats a successful `session-set` / `session-retract` /
/// `session-close` acknowledgement: `{"ok":true}`, with the previously
/// observed state appended as `"removed"` when a retraction actually
/// removed evidence.
pub fn format_session_ack(removed: Option<&str>) -> String {
    match removed {
        Some(state) => {
            let mut out = String::from("{\"ok\":true,\"removed\":\"");
            escape_into(&mut out, state);
            out.push_str("\"}");
            out
        }
        None => "{\"ok\":true}".to_string(),
    }
}

/// Formats a successful `session-query` answer: the plain
/// [`format_response`] line plus how it was answered — a `"mode"`
/// field (`"cached"`, `"incremental"`, or `"full"`) and, for
/// incremental answers, the re-collected clique count as `"dirty"`.
/// Both extras are deterministic for a fixed request transcript, so
/// session responses stay golden-comparable.
pub fn format_session_response(
    names: &dyn ModelNames,
    target: VarId,
    marginal: &PotentialTable,
    mode: &evprop_incremental::QueryMode,
) -> String {
    let mut out = format_response(names, target, marginal);
    out.pop(); // reopen the object: drop the trailing '}'
    out.push_str(&format!(",\"mode\":\"{}\"", mode.label()));
    if let evprop_incremental::QueryMode::Incremental { dirty_cliques, .. } = mode {
        out.push_str(&format!(",\"dirty\":{dirty_cliques}"));
    }
    out.push('}');
    out
}

/// Appends a `"model":"name@vN"` field to an already-formatted
/// response object — used whenever the *request* named a model, so
/// every answer reports exactly which version produced it. Requests
/// that rely on the default alias get the unadorned line, keeping
/// pre-registry transcripts byte-identical.
pub fn with_model_tag(mut line: String, tag: &str) -> String {
    line.pop(); // reopen the object: drop the trailing '}'
    line.push_str(",\"model\":\"");
    escape_into(&mut line, tag);
    line.push_str("\"}");
    line
}

/// Formats a successful `model-load`:
/// `{"ok":true,"model":"name@vN","bytes":B}`.
pub fn format_model_loaded(tag: &str, bytes: u64) -> String {
    let mut out = String::from("{\"ok\":true,\"model\":\"");
    escape_into(&mut out, tag);
    out.push_str(&format!("\",\"bytes\":{bytes}}}"));
    out
}

/// Formats a successful `model-swap`: `{"ok":true,"model":"name@vN"}`.
pub fn format_model_swapped(tag: &str) -> String {
    let mut out = String::from("{\"ok\":true,\"model\":\"");
    escape_into(&mut out, tag);
    out.push_str("\"}");
    out
}

/// Formats a successful `model-unload`:
/// `{"ok":true,"unloaded":["name@vN", …]}`.
pub fn format_model_unloaded(tags: &[String]) -> String {
    let mut out = String::from("{\"ok\":true,\"unloaded\":[");
    for (i, tag) in tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, tag);
        out.push('"');
    }
    out.push_str("]}");
    out
}

/// Formats a `model-list` answer (schema in the [module docs](self)).
/// The registry returns names and versions sorted, so the line is
/// deterministic for a fixed command transcript.
pub fn format_model_list(models: &[ModelInfo]) -> String {
    let mut out = String::from("{\"models\":[");
    for (i, m) in models.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &m.name);
        out.push_str(&format!("\",\"alias\":{},\"versions\":[", m.alias));
        for (j, v) in m.versions.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"version\":{},\"bytes\":{},\"served\":{},\"pinned\":{}}}",
                v.version, v.bytes, v.served, v.pinned,
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Formats the immediate `drain` acknowledgement:
/// `{"ok":true,"draining":true}`. Sent before the drain completes, so
/// the client knows admission is shut and can disconnect.
pub fn format_drain_ack() -> String {
    "{\"ok\":true,\"draining\":true}".to_string()
}

/// Formats an error as one response line (no trailing newline).
pub fn format_error(message: &str) -> String {
    let mut out = String::from("{\"error\":\"");
    escape_into(&mut out, message);
    out.push_str("\"}");
    out
}

fn micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Formats a [`RuntimeStats`] snapshot as one `{"stats": …}` response
/// line (schema in the [module docs](self)). The kernel-plan cache
/// counters are appended as a `"plan_cache"` object only when the
/// snapshot carries them ([`RuntimeStats::plan_cache`] is `Some`).
/// The `"kernel_backend"` field names the SIMD backend answering
/// queries; every backend is bit-identical, so the field is purely
/// observability.
pub fn format_stats(stats: &RuntimeStats) -> String {
    let mut out = format!(
        "{{\"stats\":{{\"served\":{},\"errors\":{},\"queue_depth\":{},\
         \"queue_high_water\":{},\"uptime_us\":{},\"mean_latency_us\":{},\
         \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"shards\":[",
        stats.served,
        stats.errors,
        stats.queue_depth,
        stats.queue_high_water,
        micros(stats.uptime),
        micros(stats.mean_latency),
        micros(stats.p50),
        micros(stats.p95),
        micros(stats.p99),
    );
    for (i, s) in stats.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shard\":{},\"served\":{},\"errors\":{},\"batches\":{},\
             \"busy_us\":{},\"idle_us\":{},\"mean_latency_us\":{},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"arenas_allocated\":{}}}",
            s.shard,
            s.served,
            s.errors,
            s.batches,
            micros(s.busy),
            micros(s.idle),
            micros(s.mean_latency),
            micros(s.p50),
            micros(s.p95),
            micros(s.p99),
            s.arenas_allocated,
        ));
    }
    out.push(']');
    out.push_str(&format!(",\"kernel_backend\":\"{}\"", stats.kernel_backend));
    if let Some(p) = stats.plan_cache {
        out.push_str(&format!(
            ",\"plan_cache\":{{\"hits\":{},\"misses\":{},\"interned\":{}}}",
            p.hits, p.misses, p.interned,
        ));
    }
    if let Some(s) = &stats.sessions {
        let p = &s.propagation;
        out.push_str(&format!(
            ",\"sessions\":{{\"open\":{},\"opened\":{},\"closed\":{},\
             \"expired\":{},\"rejected\":{},\"queries\":{},\"cached\":{},\
             \"incremental\":{},\"full\":{},\"full_zero_separator\":{},\
             \"stale_edges\":{},\"dirty_hist\":[",
            s.open,
            s.opened,
            s.closed,
            s.expired,
            s.rejected,
            p.queries,
            p.cached,
            p.incremental,
            p.full,
            p.full_zero_separator,
            p.stale_edges,
        ));
        for (i, c) in p.dirty_hist.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("]}");
    }
    if let Some(r) = &stats.registry {
        out.push_str(&format!(
            ",\"registry\":{{\"loads\":{},\"evictions\":{},\"swaps\":{},\
             \"models\":{},\"versions\":{},\"resident_bytes\":{},\
             \"unlinked\":{},\"unlinked_bytes\":{},\"served\":{}}}",
            r.loads,
            r.evictions,
            r.swaps,
            r.models,
            r.versions,
            r.resident_bytes,
            r.unlinked,
            r.unlinked_bytes,
            r.served,
        ));
    }
    if let Some(fa) = &stats.faults {
        out.push_str(&format!(
            ",\"faults\":{{\"shed\":{},\"cancelled\":{},\"panics\":{},\"restarts\":{}}}",
            fa.shed, fa.cancelled, fa.panics, fa.restarts,
        ));
    }
    out.push_str("}}");
    out
}

/// Formats recent-query summaries as one `{"trace": …}` response line
/// (schema in the [module docs](self)).
pub fn format_trace(names: &dyn ModelNames, recent: &[QuerySummary]) -> String {
    let mut out = String::from("{\"trace\":{\"recent\":[");
    for (i, q) in recent.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"target\":\"");
        escape_into(&mut out, &names.var_name(q.target));
        out.push_str(&format!(
            "\",\"ok\":{},\"shard\":{},\"queue_us\":{},\"exec_us\":{}}}",
            q.ok,
            q.timing.shard,
            micros(q.timing.queue),
            micros(q.timing.exec),
        ));
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;

    fn asia_names() -> NumericNames {
        NumericNames::of(&networks::asia())
    }

    #[test]
    fn parses_full_request_with_numeric_names() {
        let names = asia_names();
        let q = parse_request(
            r#"{"target": "v3", "evidence": {"v7": 1, "v0": "0"}, "likelihood": {"v6": [0.4, 0.8]}}"#,
            &names,
        )
        .unwrap();
        assert_eq!(q.target, VarId(3));
        assert_eq!(q.evidence.state_of(VarId(7)), Some(1));
        assert_eq!(q.evidence.state_of(VarId(0)), Some(0));
    }

    #[test]
    fn rejects_malformed_input() {
        let names = asia_names();
        assert!(parse_request("not json", &names).is_err());
        assert!(parse_request("{}", &names).is_err());
        assert!(parse_request(r#"{"target": "nope"}"#, &names).is_err());
        assert!(parse_request(r#"{"target": "v1", "evidence": {"v2": 99}}"#, &names).is_err());
        assert!(
            parse_request(r#"{"target": "v1", "likelihood": {"v2": [0.5]}}"#, &names).is_err(),
            "wrong weight count must be rejected"
        );
        assert!(parse_request(r#"{"target": "v1"} trailing"#, &names).is_err());
    }

    #[test]
    fn bif_names_resolve_symbolically() {
        let bif = evprop_bayesnet::bif::with_generated_names(networks::asia(), "asia");
        let q = parse_request(
            &format!(
                r#"{{"target": "{}", "evidence": {{"{}": "{}"}}}}"#,
                ModelNames::var_name(&bif, VarId(3)),
                ModelNames::var_name(&bif, VarId(7)),
                ModelNames::state_name(&bif, VarId(7), 1),
            ),
            &bif,
        )
        .unwrap();
        assert_eq!(q.target, VarId(3));
        assert_eq!(q.evidence.state_of(VarId(7)), Some(1));
    }

    #[test]
    fn response_roundtrips_through_the_parser() {
        let names = asia_names();
        let session = evprop_core::InferenceSession::from_network(&networks::asia()).unwrap();
        let m = session
            .posterior(
                &evprop_core::SequentialEngine,
                VarId(3),
                &EvidenceSet::new(),
            )
            .unwrap();
        let line = format_response(&names, VarId(3), &m);
        let v = parse_json(&line).unwrap();
        let Some(Json::Arr(probs)) = v.get("marginal") else {
            panic!("missing marginal: {line}");
        };
        let got: Vec<f64> = probs
            .iter()
            .map(|p| match p {
                Json::Num(x) => *x,
                _ => panic!("non-numeric marginal"),
            })
            .collect();
        assert_eq!(got, m.data(), "shortest-roundtrip floats survive");
        assert_eq!(v.get("target"), Some(&Json::Str("v3".into())));
    }

    #[test]
    fn error_formatting_escapes_quotes() {
        let line = format_error(r#"bad "thing" happened"#);
        let v = parse_json(&line).unwrap();
        assert_eq!(
            v.get("error"),
            Some(&Json::Str(r#"bad "thing" happened"#.into()))
        );
    }

    #[test]
    fn unicode_escapes_combine_surrogate_pairs() {
        // BMP escapes stand alone; astral chars arrive as a
        // high/low surrogate pair that must combine into one scalar.
        let v = parse_json(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("A\u{e9}\u{1f600}".into()));
        // The same scalar as raw UTF-8 parses identically.
        assert_eq!(
            parse_json("\"\u{1f600}\"").unwrap(),
            Json::Str("\u{1f600}".into())
        );
        // Pair arithmetic at the plane edges.
        assert_eq!(
            parse_json(r#""\ud800\udc00""#).unwrap(),
            Json::Str("\u{10000}".into())
        );
        assert_eq!(
            parse_json(r#""\udbff\udfff""#).unwrap(),
            Json::Str("\u{10ffff}".into())
        );
    }

    #[test]
    fn unpaired_surrogates_are_rejected() {
        for src in [
            r#""\ud83d""#,       // lone high at end of string
            r#""\ud83d rest""#,  // high followed by plain text
            r#""\ud83d\u0041""#, // high + non-surrogate escape
            r#""\ud83d\ud83d""#, // high paired with another high
            r#""\ude00""#,       // lone low
        ] {
            let e = parse_json(src).unwrap_err();
            assert!(e.contains("surrogate"), "{src}: {e}");
        }
    }

    #[test]
    fn stats_line_carries_kernel_backend() {
        let stats = RuntimeStats {
            shards: vec![],
            served: 3,
            errors: 0,
            queue_depth: 1,
            queue_high_water: 2,
            mean_latency: std::time::Duration::from_micros(5),
            p50: std::time::Duration::from_micros(5),
            p95: std::time::Duration::from_micros(9),
            p99: std::time::Duration::from_micros(9),
            uptime: std::time::Duration::from_millis(1),
            plan_cache: None,
            kernel_backend: "scalar",
            sessions: None,
            registry: None,
            faults: None,
        };
        let line = format_stats(&stats);
        let v = parse_json(&line).unwrap();
        let s = v.get("stats").expect("stats object");
        assert_eq!(s.get("kernel_backend"), Some(&Json::Str("scalar".into())));
        assert_eq!(s.get("served"), Some(&Json::Num(3.0)));
        assert_eq!(s.get("plan_cache"), None);
        assert!(!line.contains("faults"), "absent until a counter moves");
    }

    #[test]
    fn stats_line_faults_appear_only_when_counters_moved() {
        use crate::metrics::FaultStats;
        let mut stats = RuntimeStats {
            shards: vec![],
            served: 0,
            errors: 0,
            queue_depth: 0,
            queue_high_water: 0,
            mean_latency: std::time::Duration::ZERO,
            p50: std::time::Duration::ZERO,
            p95: std::time::Duration::ZERO,
            p99: std::time::Duration::ZERO,
            uptime: std::time::Duration::ZERO,
            plan_cache: None,
            kernel_backend: "scalar",
            sessions: None,
            registry: None,
            faults: None,
        };
        assert!(!format_stats(&stats).contains("faults"));
        stats.faults = Some(FaultStats {
            shed: 2,
            cancelled: 1,
            panics: 3,
            restarts: 4,
        });
        let line = format_stats(&stats);
        let v = parse_json(&line).unwrap();
        let f = v
            .get("stats")
            .and_then(|s| s.get("faults"))
            .expect("faults object");
        assert_eq!(f.get("shed"), Some(&Json::Num(2.0)));
        assert_eq!(f.get("cancelled"), Some(&Json::Num(1.0)));
        assert_eq!(f.get("panics"), Some(&Json::Num(3.0)));
        assert_eq!(f.get("restarts"), Some(&Json::Num(4.0)));
    }

    #[test]
    fn parses_deadline_and_drain() {
        let names = asia_names();
        // No deadline by default — the pre-deadline path exactly.
        let Ok(Request::Query { deadline, .. }) = parse_request_line(r#"{"target": "v3"}"#, &names)
        else {
            panic!("expected Query");
        };
        assert_eq!(deadline, None);
        let Ok(Request::Query { deadline, .. }) =
            parse_request_line(r#"{"target": "v3", "deadline_ms": 250}"#, &names)
        else {
            panic!("expected Query");
        };
        assert_eq!(deadline, Some(std::time::Duration::from_millis(250)));
        // Zero is legal (shed immediately); junk is rejected.
        assert!(parse_request_line(r#"{"target": "v3", "deadline_ms": 0}"#, &names).is_ok());
        for bad in [
            r#"{"target": "v3", "deadline_ms": -1}"#,
            r#"{"target": "v3", "deadline_ms": 1.5}"#,
            r#"{"target": "v3", "deadline_ms": "fast"}"#,
        ] {
            assert!(parse_request_line(bad, &names).is_err(), "{bad}");
        }
        assert!(matches!(
            parse_request_line(r#"{"cmd": "drain"}"#, &names),
            Ok(Request::Drain)
        ));
        assert_eq!(format_drain_ack(), r#"{"ok":true,"draining":true}"#);
    }

    #[test]
    fn parses_session_commands() {
        let names = asia_names();
        assert!(matches!(
            parse_request_line(r#"{"cmd": "session-open"}"#, &names),
            Ok(Request::SessionOpen)
        ));
        let Ok(Request::SessionSet {
            session,
            var,
            state,
        }) = parse_request_line(
            r#"{"cmd": "session-set", "session": 7, "var": "v2", "state": 1}"#,
            &names,
        )
        else {
            panic!("expected SessionSet");
        };
        assert_eq!((session, var, state), (7, VarId(2), 1));
        assert!(matches!(
            parse_request_line(
                r#"{"cmd": "session-retract", "session": 7, "var": "v2"}"#,
                &names
            ),
            Ok(Request::SessionRetract {
                session: 7,
                var: VarId(2)
            })
        ));
        assert!(matches!(
            parse_request_line(
                r#"{"cmd": "session-query", "session": 7, "target": 3}"#,
                &names
            ),
            Ok(Request::SessionQuery {
                session: 7,
                target: VarId(3)
            })
        ));
        assert!(matches!(
            parse_request_line(r#"{"cmd": "session-close", "session": 7}"#, &names),
            Ok(Request::SessionClose { session: 7 })
        ));
        // Malformed session commands are rejected with a message.
        for bad in [
            r#"{"cmd": "session-set", "var": "v2", "state": 1}"#, // no id
            r#"{"cmd": "session-set", "session": -1, "var": "v2", "state": 1}"#,
            r#"{"cmd": "session-set", "session": 1.5, "var": "v2", "state": 1}"#,
            r#"{"cmd": "session-set", "session": 1, "var": "v2"}"#, // no state
            r#"{"cmd": "session-set", "session": 1, "var": "v2", "state": 99}"#,
            r#"{"cmd": "session-query", "session": 1}"#, // no target
            r#"{"cmd": "session-frobnicate", "session": 1}"#,
        ] {
            assert!(parse_request_line(bad, &names).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_model_commands() {
        let names = asia_names();
        let Ok(Request::ModelLoad { path, name }) = parse_request_line(
            r#"{"cmd": "model-load", "path": "/tmp/x.bif", "name": "x"}"#,
            &names,
        ) else {
            panic!("expected ModelLoad");
        };
        assert_eq!((path.as_str(), name.as_str()), ("/tmp/x.bif", "x"));
        assert!(matches!(
            parse_request_line(r#"{"cmd": "model-unload", "name": "x"}"#, &names),
            Ok(Request::ModelUnload { version: None, .. })
        ));
        assert!(matches!(
            parse_request_line(
                r#"{"cmd": "model-unload", "name": "x", "version": 2}"#,
                &names
            ),
            Ok(Request::ModelUnload {
                version: Some(2),
                ..
            })
        ));
        assert!(matches!(
            parse_request_line(r#"{"cmd": "model-list"}"#, &names),
            Ok(Request::ModelList)
        ));
        assert!(matches!(
            parse_request_line(
                r#"{"cmd": "model-swap", "name": "x", "version": 3}"#,
                &names
            ),
            Ok(Request::ModelSwap { version: 3, .. })
        ));
        for bad in [
            r#"{"cmd": "model-load", "name": "x"}"#,  // no path
            r#"{"cmd": "model-load", "path": "/p"}"#, // no name
            r#"{"cmd": "model-swap", "name": "x"}"#,  // no version
            r#"{"cmd": "model-swap", "name": "x", "version": 0}"#, // versions start at 1
            r#"{"cmd": "model-swap", "name": "x", "version": 1.5}"#, // non-integer
            r#"{"cmd": "model-unload", "version": 1}"#, // no name
        ] {
            assert!(parse_request_line(bad, &names).is_err(), "{bad}");
        }
    }

    #[test]
    fn model_field_extraction() {
        let v = parse_json(r#"{"target": "v3", "model": "asia@v2"}"#).unwrap();
        assert_eq!(request_model(&v).unwrap(), Some("asia@v2".to_string()));
        let v = parse_json(r#"{"target": "v3"}"#).unwrap();
        assert_eq!(request_model(&v).unwrap(), None);
        let v = parse_json(r#"{"target": "v3", "model": 7}"#).unwrap();
        assert!(request_model(&v).is_err());
    }

    #[test]
    fn session_id_extraction_is_limited_to_session_commands() {
        let v = parse_json(r#"{"cmd": "session-query", "session": 4, "target": "v3"}"#).unwrap();
        assert_eq!(request_session(&v), Some(4));
        let v = parse_json(r#"{"cmd": "session-close", "session": 1}"#).unwrap();
        assert_eq!(request_session(&v), Some(1));
        // session-open has no id yet; plain queries never have one; a
        // malformed id falls back to default names and errors in parse.
        for other in [
            r#"{"cmd": "session-open"}"#,
            r#"{"target": "v3", "session": 4}"#,
            r#"{"cmd": "session-query", "session": -1, "target": "v3"}"#,
            r#"{"cmd": "session-query", "target": "v3"}"#,
        ] {
            assert_eq!(
                request_session(&parse_json(other).unwrap()),
                None,
                "{other}"
            );
        }
    }

    #[test]
    fn model_response_formatting() {
        assert_eq!(
            format_model_loaded("asia@v2", 1234),
            r#"{"ok":true,"model":"asia@v2","bytes":1234}"#
        );
        assert_eq!(
            format_model_swapped("asia@v1"),
            r#"{"ok":true,"model":"asia@v1"}"#
        );
        assert_eq!(
            format_model_unloaded(&["asia@v1".into(), "asia@v2".into()]),
            r#"{"ok":true,"unloaded":["asia@v1","asia@v2"]}"#
        );
        assert_eq!(
            with_model_tag(r#"{"session":3}"#.to_string(), "asia@v1"),
            r#"{"session":3,"model":"asia@v1"}"#
        );
        let list = vec![ModelInfo {
            name: "asia".into(),
            alias: 2,
            versions: vec![evprop_registry::VersionInfo {
                version: 2,
                bytes: 99,
                served: 1,
                pinned: true,
            }],
        }];
        assert_eq!(
            format_model_list(&list),
            r#"{"models":[{"name":"asia","alias":2,"versions":[{"version":2,"bytes":99,"served":1,"pinned":true}]}]}"#
        );
        assert_eq!(format_model_list(&[]), r#"{"models":[]}"#);
    }

    #[test]
    fn session_response_formatting() {
        assert_eq!(format_session_opened(12), r#"{"session":12}"#);
        assert_eq!(format_session_ack(None), r#"{"ok":true}"#);
        assert_eq!(
            format_session_ack(Some("yes")),
            r#"{"ok":true,"removed":"yes"}"#
        );
        let names = asia_names();
        let session = evprop_core::InferenceSession::from_network(&networks::asia()).unwrap();
        let m = session
            .posterior(
                &evprop_core::SequentialEngine,
                VarId(3),
                &EvidenceSet::new(),
            )
            .unwrap();
        let plain = format_response(&names, VarId(3), &m);
        let cached =
            format_session_response(&names, VarId(3), &m, &evprop_incremental::QueryMode::Cached);
        let v = parse_json(&cached).unwrap();
        assert_eq!(v.get("mode"), Some(&Json::Str("cached".into())));
        assert_eq!(v.get("dirty"), None, "dirty only on incremental answers");
        assert_eq!(
            v.get("marginal"),
            parse_json(&plain).unwrap().get("marginal")
        );
        let inc = format_session_response(
            &names,
            VarId(3),
            &m,
            &evprop_incremental::QueryMode::Incremental {
                dirty_cliques: 3,
                stale_edges: 2,
            },
        );
        let v = parse_json(&inc).unwrap();
        assert_eq!(v.get("mode"), Some(&Json::Str("incremental".into())));
        assert_eq!(v.get("dirty"), Some(&Json::Num(3.0)));
    }

    #[test]
    fn stats_line_sessions_are_absent_when_none() {
        use crate::sessions::SessionTableStats;
        let mut stats = RuntimeStats {
            shards: vec![],
            served: 0,
            errors: 0,
            queue_depth: 0,
            queue_high_water: 0,
            mean_latency: std::time::Duration::ZERO,
            p50: std::time::Duration::ZERO,
            p95: std::time::Duration::ZERO,
            p99: std::time::Duration::ZERO,
            uptime: std::time::Duration::ZERO,
            plan_cache: None,
            kernel_backend: "scalar",
            sessions: None,
            registry: None,
            faults: None,
        };
        let line = format_stats(&stats);
        assert!(!line.contains("sessions"), "{line}");

        let mut table = SessionTableStats {
            open: 1,
            opened: 2,
            closed: 1,
            ..Default::default()
        };
        table.propagation.queries = 5;
        table.propagation.incremental = 3;
        table.propagation.dirty_hist[2] = 3;
        stats.sessions = Some(table);
        let line = format_stats(&stats);
        let v = parse_json(&line).unwrap();
        let s = v
            .get("stats")
            .and_then(|s| s.get("sessions"))
            .expect("sessions object");
        assert_eq!(s.get("open"), Some(&Json::Num(1.0)));
        assert_eq!(s.get("incremental"), Some(&Json::Num(3.0)));
        let Some(Json::Arr(hist)) = s.get("dirty_hist") else {
            panic!("missing dirty_hist: {line}");
        };
        assert_eq!(hist.len(), evprop_incremental::DIRTY_HIST_BUCKETS);
        assert_eq!(hist[2], Json::Num(3.0));
    }

    mod prop {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Arbitrary strings: any scalar value — controls, quotes,
        /// backslashes, astral chars (surrogate gaps filtered out).
        fn arb_string() -> impl Strategy<Value = String> {
            vec(0u32..0x11_0000, 0..40)
                .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
        }

        proptest! {
            // Arbitrary strings survive escape → parse unchanged.
            #[test]
            fn error_strings_roundtrip_through_parser(s in arb_string()) {
                let line = format_error(&s);
                let v = parse_json(&line).unwrap();
                prop_assert_eq!(v.get("error"), Some(&Json::Str(s)));
            }

            // Escaped surrogate pairs decode to exactly the scalar
            // whose code units they are.
            #[test]
            fn surrogate_pairs_decode_to_their_scalar(c in 0x1_0000u32..=0x10_ffff) {
                let ch = char::from_u32(c).unwrap();
                let mut buf = [0u16; 2];
                let units = ch.encode_utf16(&mut buf);
                let src = format!(r#""\u{:04x}\u{:04x}""#, units[0], units[1]);
                prop_assert_eq!(parse_json(&src).unwrap(), Json::Str(ch.to_string()));
            }
        }
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\nyA"}, "d": null, "e": true}"#)
            .unwrap();
        let Some(Json::Arr(a)) = v.get("a") else {
            panic!()
        };
        assert_eq!(a[2], Json::Num(-300.0));
        let Some(b) = v.get("b") else { panic!() };
        assert_eq!(b.get("c"), Some(&Json::Str("x\nyA".into())));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }
}
