//! `evprop-loadgen` — deterministic TCP load generator for `evprop
//! serve --listen`.
//!
//! ```text
//! evprop-loadgen <file.bif> --addr HOST:PORT --queries N
//!                [--seed S] [--connections C] [--out FILE] [--open-loop] [--timing]
//!                [--session] [--transcript FILE]
//! ```
//!
//! Generates the same pseudo-random query stream for a given
//! `(file, N, seed)` triple, drives it over `C` connections
//! (round-robin), and writes one response line per request — in
//! request order per connection — to `--out` (default stdout). With a
//! single connection the output is fully deterministic, which the CI
//! smoke test diffs against a golden file.
//!
//! Closed loop (default): each connection waits for a response before
//! sending its next request, and the summary reports end-to-end
//! latency. Open loop (`--open-loop`): each connection writes all its
//! requests up front and drains responses afterwards — the overload
//! pattern that exercises the server-side admission queue.
//!
//! `--timing` sets `"timing": true` on every request, so each success
//! response carries the opt-in `queue_us`/`exec_us`/`shard` fields.
//! Timed responses are *not* golden-comparable (the microsecond values
//! vary run to run); the flag exists so smoke jobs can assert the
//! fields appear on demand while the default stream stays byte-stable.
//!
//! `--session` switches each connection to the stateful protocol: it
//! opens one incremental session, streams `--queries` evidence-churn
//! steps (each a `session-set` or `session-retract` followed by a
//! `session-query`), and closes the session. The `session-open` is
//! always synchronous — the server assigns the id — and the remaining
//! stream honours `--open-loop` like the stateless mode.
//!
//! `--transcript FILE` replays raw request lines from `FILE` verbatim
//! over a single closed-loop connection instead of generating a
//! stream — the CI session smoke test replays a scripted session
//! transcript this way and diffs the responses against a golden file.
//!
//! `--models NAME=PATH,NAME=PATH,...` switches to mixed-tenant mode
//! against a registry-mode server: each query carries a `"model"`
//! field choosing one of the named models (round-robin by default,
//! `--model-dist zipf` for a skewed tenant mix), with its target and
//! evidence drawn from that model's own BIF. The summary then reports
//! one latency row per model (count, errors, mean, p50, p99; measured
//! client-side, closed-loop only). The positional BIF file is still
//! required but queries are generated only from the `--models` entries.
//!
//! `--deadline-ms N` stamps `"deadline_ms": N` on every stateless
//! request, so the server sheds what it cannot start in time. Off by
//! default, keeping the golden request stream byte-identical.
//!
//! `--chaos` drives the stateless stream fault-tolerantly against a
//! chaos-enabled server: a dropped connection is survived by
//! reconnecting (the unanswered request counts as `dropped`), every
//! 37th request is deliberately torn mid-line (no newline, then hang
//! up — counts as `torn`, no response expected), and if the server
//! goes away entirely (e.g. a mid-run drain) the remaining requests
//! are marked dropped. The run fails unless the books balance:
//! `received + dropped == requests − torn`.
//!
//! Every run prints a response-class summary line to stderr
//! (`loadgen: classes ok=… deadline_exceeded=… worker_panicked=… …`),
//! so smoke jobs can assert on exact fault accounting.

use evprop_bayesnet::bif::{self, BifNetwork};
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage:
  evprop-loadgen <file.bif> --addr HOST:PORT --queries N [--seed S] [--connections C] [--out FILE] [--open-loop] [--timing] [--session] [--deadline-ms N] [--chaos]
  evprop-loadgen <file.bif> --addr HOST:PORT --queries N --models NAME=PATH,... [--model-dist rr|zipf] [--seed S] [--connections C] [--out FILE] [--open-loop]
  evprop-loadgen <file.bif> --addr HOST:PORT --transcript FILE [--out FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// One deterministic stateless request: one target, at most one
/// hard-evidence observation, target and evidence distinct; optionally
/// addressed to a named model.
fn one_request(
    bif: &BifNetwork,
    rng: &mut rand::rngs::StdRng,
    timing: bool,
    model: Option<&str>,
    deadline_ms: Option<u64>,
) -> String {
    let net = &bif.network;
    let vars = net.num_vars() as u32;
    let target = rng.gen_range(0..vars);
    let mut line = String::from("{");
    if let Some(name) = model {
        line.push_str(&format!(r#""model": "{name}", "#));
    }
    line.push_str(&format!(
        r#""target": "{}""#,
        bif.var_names[target as usize]
    ));
    if vars > 1 {
        let mut obs = rng.gen_range(0..vars);
        while obs == target {
            obs = rng.gen_range(0..vars);
        }
        let card = net.var(evprop_potential::VarId(obs)).cardinality();
        let state = rng.gen_range(0..card);
        line.push_str(&format!(
            r#", "evidence": {{"{}": "{}"}}"#,
            bif.var_names[obs as usize], bif.state_names[obs as usize][state]
        ));
    }
    if timing {
        line.push_str(r#", "timing": true"#);
    }
    if let Some(ms) = deadline_ms {
        line.push_str(&format!(r#", "deadline_ms": {ms}"#));
    }
    line.push('}');
    line
}

/// The same deterministic query scheme as `evprop serve`: one stream of
/// [`one_request`] lines for a given `(file, N, seed)` triple.
fn request_lines(
    bif: &BifNetwork,
    n: usize,
    seed: u64,
    timing: bool,
    deadline_ms: Option<u64>,
) -> Vec<String> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| one_request(bif, &mut rng, timing, None, deadline_ms))
        .collect()
}

/// Mixed-tenant request stream: per query, pick one of the named models
/// (round-robin, or zipf-skewed toward earlier `--models` entries) and
/// generate a query valid for *that* model's variables. Returns the
/// request lines plus each line's model index (for per-model latency
/// accounting). Deterministic for a given `(models, N, seed)` triple.
fn mixed_request_lines(
    models: &[(String, BifNetwork)],
    n: usize,
    seed: u64,
    zipf: bool,
) -> (Vec<String>, Vec<usize>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Harmonic-series CDF: P(model k) ∝ 1/(k+1).
    let weights: Vec<f64> = (0..models.len()).map(|k| 1.0 / (k + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut lines = Vec::with_capacity(n);
    let mut choices = Vec::with_capacity(n);
    for i in 0..n {
        let k = if zipf {
            let mut x = rng.gen_range(0.0..total);
            let mut pick = models.len() - 1;
            for (j, w) in weights.iter().enumerate() {
                if x < *w {
                    pick = j;
                    break;
                }
                x -= w;
            }
            pick
        } else {
            i % models.len()
        };
        let (name, bif) = &models[k];
        lines.push(one_request(bif, &mut rng, false, Some(name), None));
        choices.push(k);
    }
    (lines, choices)
}

/// Deterministic session-churn bodies (no session id yet — the server
/// assigns it at open time, and [`drive_session`] splices it in).
/// Each step is an evidence delta (set, or retract once something is
/// observed) followed by a posterior query on a different variable.
fn session_step_lines(bif: &BifNetwork, n: usize, seed: u64) -> Vec<String> {
    let net = &bif.network;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vars = net.num_vars() as u32;
    let mut observed: Vec<u32> = Vec::new();
    let mut lines = Vec::with_capacity(n * 2);
    for _ in 0..n {
        // Force a retraction when one more observation could use up
        // every variable — a query target must stay unobserved.
        let must_retract = observed.len() as u32 >= vars.saturating_sub(1);
        let retract = !observed.is_empty() && (must_retract || rng.gen_bool(0.3));
        if retract {
            let var = observed.swap_remove(rng.gen_range(0..observed.len()));
            lines.push(format!(
                r#"{{"cmd": "session-retract", "session": @ID@, "var": "{}"}}"#,
                bif.var_names[var as usize]
            ));
        } else {
            let var = rng.gen_range(0..vars);
            let card = net.var(evprop_potential::VarId(var)).cardinality();
            let state = rng.gen_range(0..card);
            if !observed.contains(&var) {
                observed.push(var);
            }
            lines.push(format!(
                r#"{{"cmd": "session-set", "session": @ID@, "var": "{}", "state": "{}"}}"#,
                bif.var_names[var as usize], bif.state_names[var as usize][state]
            ));
        }
        let free: Vec<u32> = (0..vars).filter(|v| !observed.contains(v)).collect();
        let target = free[rng.gen_range(0..free.len())];
        lines.push(format!(
            r#"{{"cmd": "session-query", "session": @ID@, "target": "{}"}}"#,
            bif.var_names[target as usize]
        ));
    }
    lines
}

fn run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("loadgen needs a BIF file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let bif = bif::parse(&src).map_err(|e| e.to_string())?;

    let addr = flag_value(args, "--addr").ok_or("--addr HOST:PORT is required")?;
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed must be a number".to_string())?;
    let connections: usize = flag_value(args, "--connections")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "--connections must be a number".to_string())?;
    if connections == 0 {
        return Err("--connections must be at least 1".to_string());
    }
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let timing = args.iter().any(|a| a == "--timing");
    let session_mode = args.iter().any(|a| a == "--session");
    let chaos_mode = args.iter().any(|a| a == "--chaos");
    let deadline_ms: Option<u64> = match flag_value(args, "--deadline-ms") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| "--deadline-ms must be a number".to_string())?,
        ),
        None => None,
    };
    if chaos_mode
        && (session_mode
            || flag_value(args, "--models").is_some()
            || flag_value(args, "--transcript").is_some())
    {
        return Err("--chaos drives the plain stateless stream only".to_string());
    }

    let started = Instant::now();
    let mut model_rows: Vec<String> = Vec::new();
    let mut dropped_total = 0u64;
    let mut torn_total = 0u64;
    let mut chaos_requests = 0usize;
    let (responses, label) = if let Some(file) = flag_value(args, "--transcript") {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read '{file}': {e}"))?;
        let lines: Vec<String> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect();
        // Replay is single-connection and closed-loop: the transcript's
        // responses must be byte-reproducible.
        (vec![drive(addr, &lines, false)?], "transcript replay")
    } else if let Some(spec) = flag_value(args, "--models") {
        let queries: usize = flag_value(args, "--queries")
            .ok_or("--queries N is required")?
            .parse()
            .map_err(|_| "--queries must be a number".to_string())?;
        let zipf = match flag_value(args, "--model-dist") {
            None | Some("rr") => false,
            Some("zipf") => true,
            Some(other) => return Err(format!("bad --model-dist '{other}' (rr|zipf)")),
        };
        let mut models: Vec<(String, BifNetwork)> = Vec::new();
        for entry in spec.split(',') {
            let (name, path) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad --models entry '{entry}': expected NAME=PATH"))?;
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            models.push((
                name.to_string(),
                bif::parse(&src).map_err(|e| e.to_string())?,
            ));
        }
        let (lines, choices) = mixed_request_lines(&models, queries, seed, zipf);
        let mut workers = Vec::new();
        for c in 0..connections {
            let addr = addr.to_string();
            let batch: Vec<String> = lines.iter().skip(c).step_by(connections).cloned().collect();
            workers.push(std::thread::spawn(move || {
                drive_timed(&addr, &batch, open_loop)
            }));
        }
        let mut responses = Vec::new();
        let mut lat_by_model: Vec<Vec<Duration>> = vec![Vec::new(); models.len()];
        let mut count_by_model = vec![0u64; models.len()];
        let mut err_by_model = vec![0u64; models.len()];
        for (c, w) in workers.into_iter().enumerate() {
            let (resp, lats) = w.join().map_err(|_| "connection thread panicked")??;
            let conn_choices: Vec<usize> = choices
                .iter()
                .skip(c)
                .step_by(connections)
                .copied()
                .collect();
            for (i, r) in resp.iter().enumerate() {
                count_by_model[conn_choices[i]] += 1;
                if r.contains("\"error\"") {
                    err_by_model[conn_choices[i]] += 1;
                }
            }
            for (i, l) in lats.iter().enumerate() {
                lat_by_model[conn_choices[i]].push(*l);
            }
            responses.push(resp);
        }
        for (k, (name, _)) in models.iter().enumerate() {
            let mut lats = std::mem::take(&mut lat_by_model[k]);
            lats.sort_unstable();
            let row = if lats.is_empty() {
                format!(
                    "model {name}: {} queries, {} errors, latency n/a (open loop)",
                    count_by_model[k], err_by_model[k]
                )
            } else {
                let mean = lats.iter().sum::<Duration>() / lats.len() as u32;
                format!(
                    "model {name}: {} queries, {} errors, mean {:.3}ms, p50 {:.3}ms, p99 {:.3}ms",
                    count_by_model[k],
                    err_by_model[k],
                    mean.as_secs_f64() * 1e3,
                    lat_quantile(&lats, 0.50).as_secs_f64() * 1e3,
                    lat_quantile(&lats, 0.99).as_secs_f64() * 1e3,
                )
            };
            model_rows.push(row);
        }
        (responses, "mixed-tenant")
    } else {
        let queries: usize = flag_value(args, "--queries")
            .ok_or("--queries N is required")?
            .parse()
            .map_err(|_| "--queries must be a number".to_string())?;
        if session_mode {
            let mut workers = Vec::new();
            for c in 0..connections {
                let addr = addr.to_string();
                // Distinct seed per connection: independent case streams.
                let steps =
                    session_step_lines(&bif, queries, seed ^ (c as u64).wrapping_mul(0x9E37));
                workers.push(std::thread::spawn(move || {
                    drive_session(&addr, &steps, open_loop)
                }));
            }
            let mut responses = Vec::new();
            for w in workers {
                responses.push(w.join().map_err(|_| "connection thread panicked")??);
            }
            (responses, "session")
        } else if chaos_mode {
            let lines = request_lines(&bif, queries, seed, timing, deadline_ms);
            chaos_requests = lines.len();
            let mut workers = Vec::new();
            for c in 0..connections {
                let addr = addr.to_string();
                let batch: Vec<String> =
                    lines.iter().skip(c).step_by(connections).cloned().collect();
                workers.push(std::thread::spawn(move || drive_chaos(&addr, &batch)));
            }
            let mut responses = Vec::new();
            for w in workers {
                let (resp, dropped, torn) =
                    w.join().map_err(|_| "connection thread panicked")??;
                dropped_total += dropped;
                torn_total += torn;
                responses.push(resp);
            }
            (responses, "chaos")
        } else {
            let lines = request_lines(&bif, queries, seed, timing, deadline_ms);
            // Round-robin split keeps per-connection order deterministic.
            let mut workers = Vec::new();
            for c in 0..connections {
                let addr = addr.to_string();
                let batch: Vec<String> =
                    lines.iter().skip(c).step_by(connections).cloned().collect();
                workers.push(std::thread::spawn(move || drive(&addr, &batch, open_loop)));
            }
            let mut responses = Vec::new();
            for w in workers {
                responses.push(w.join().map_err(|_| "connection thread panicked")??);
            }
            (responses, "stateless")
        }
    };
    let elapsed = started.elapsed();

    let mut out: Box<dyn Write> = match flag_value(args, "--out") {
        Some(file) => Box::new(BufWriter::new(
            std::fs::File::create(file).map_err(|e| format!("cannot create '{file}': {e}"))?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout())),
    };
    let total: usize = responses.iter().map(Vec::len).sum();
    for conn in &responses {
        for line in conn {
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())?;

    eprintln!(
        "loadgen: {} {label} responses over {} connection(s) in {:.3}s ({:.0} q/s, {})",
        total,
        responses.len(),
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
        if open_loop {
            "open loop"
        } else {
            "closed loop"
        },
    );
    for row in &model_rows {
        eprintln!("loadgen:   {row}");
    }

    // Per-class response accounting — one grep-friendly stderr line so
    // smoke jobs can assert on exact fault counts.
    let mut classes = [0u64; 6];
    for conn in &responses {
        for line in conn {
            classes[class_index(line)] += 1;
        }
    }
    eprintln!(
        "loadgen: classes ok={} deadline_exceeded={} worker_panicked={} queue_full={} shutting_down={} other_error={} dropped={dropped_total} torn={torn_total}",
        classes[0], classes[1], classes[2], classes[3], classes[4], classes[5],
    );
    if chaos_mode {
        let received = total as u64 + dropped_total;
        let expected = chaos_requests as u64 - torn_total;
        if received != expected {
            return Err(format!(
                "chaos accounting mismatch: {total} received + {dropped_total} dropped != {chaos_requests} requests - {torn_total} torn"
            ));
        }
        eprintln!("loadgen: chaos accounting ok ({total} received + {dropped_total} dropped = {chaos_requests} requests - {torn_total} torn)");
    }
    Ok(())
}

/// Buckets a response line: 0 ok, 1 deadline_exceeded, 2
/// worker_panicked, 3 queue_full, 4 shutting_down, 5 other_error.
fn class_index(line: &str) -> usize {
    if !line.contains("\"error\"") {
        0
    } else if line.contains("deadline_exceeded") {
        1
    } else if line.contains("panicked") {
        2
    } else if line.contains("admission queue full") {
        3
    } else if line.contains("shutting down") {
        4
    } else {
        5
    }
}

/// Nearest-rank quantile over an already-sorted latency sample.
fn lat_quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// [`drive`] plus per-request client-side latency (write → response).
/// Latencies are only meaningful closed-loop; open loop returns an
/// empty latency vector.
fn drive_timed(
    addr: &str,
    requests: &[String],
    open_loop: bool,
) -> Result<(Vec<String>, Vec<Duration>), String> {
    if open_loop {
        return Ok((drive(addr, requests, true)?, Vec::new()));
    }
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());
    let mut latencies = Vec::with_capacity(requests.len());
    for req in requests {
        let sent = Instant::now();
        writeln!(writer, "{req}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        responses.push(read_line(&mut reader)?);
        latencies.push(sent.elapsed());
    }
    Ok((responses, latencies))
}

/// Drives one connection; returns its responses in request order.
fn drive(addr: &str, requests: &[String], open_loop: bool) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());

    if open_loop {
        for req in requests {
            writeln!(writer, "{req}").map_err(|e| e.to_string())?;
        }
        writer.flush().map_err(|e| e.to_string())?;
        for _ in requests {
            responses.push(read_line(&mut reader)?);
        }
    } else {
        for req in requests {
            writeln!(writer, "{req}").map_err(|e| e.to_string())?;
            writer.flush().map_err(|e| e.to_string())?;
            responses.push(read_line(&mut reader)?);
        }
    }
    Ok(responses)
}

/// Chaos-tolerant closed-loop driver. A server-side connection drop is
/// survived by reconnecting (the unanswered request counts as
/// `dropped`); every 37th request is deliberately torn mid-line — no
/// newline, then hang up — to exercise the server's partial-read
/// handling (counts as `torn`; no response is expected). If the server
/// goes away entirely (mid-run drain), the rest of the batch is marked
/// dropped. Returns `(responses, dropped, torn)`.
fn drive_chaos(addr: &str, requests: &[String]) -> Result<(Vec<String>, u64, u64), String> {
    let mut responses = Vec::with_capacity(requests.len());
    let (mut dropped, mut torn) = (0u64, 0u64);
    let mut conn: Option<(BufWriter<TcpStream>, BufReader<TcpStream>)> = None;
    for (i, req) in requests.iter().enumerate() {
        if conn.is_none() {
            match connect(addr) {
                Ok(c) => conn = Some(c),
                Err(_) => {
                    dropped += (requests.len() - i) as u64;
                    break;
                }
            }
        }
        let mut kill_conn = false;
        {
            let (writer, reader) = conn.as_mut().expect("connected above");
            if (i + 1) % 37 == 0 {
                let _ = writer.write_all(req.as_bytes()); // no newline
                let _ = writer.flush();
                let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
                torn += 1;
                kill_conn = true;
            } else if writeln!(writer, "{req}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                dropped += 1;
                kill_conn = true;
            } else {
                match read_line(reader) {
                    Ok(line) => responses.push(line),
                    Err(_) => {
                        dropped += 1;
                        kill_conn = true;
                    }
                }
            }
        }
        if kill_conn {
            conn = None;
        }
    }
    Ok((responses, dropped, torn))
}

fn connect(addr: &str) -> std::io::Result<(BufWriter<TcpStream>, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    let writer = BufWriter::new(stream.try_clone()?);
    Ok((writer, BufReader::new(stream)))
}

/// Drives one stateful connection: synchronous `session-open` (the
/// server assigns the id), the churn stream with the id spliced in
/// (closed- or open-loop), then a synchronous `session-close`.
fn drive_session(addr: &str, steps: &[String], open_loop: bool) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(steps.len() + 2);

    writeln!(writer, r#"{{"cmd": "session-open"}}"#).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let opened = read_line(&mut reader)?;
    let id = opened
        .split("\"session\":")
        .nth(1)
        .and_then(|rest| rest.trim_end_matches('}').trim().parse::<u64>().ok())
        .ok_or_else(|| format!("session-open failed: {opened}"))?;
    responses.push(opened);

    let requests: Vec<String> = steps
        .iter()
        .map(|l| l.replace("@ID@", &id.to_string()))
        .collect();
    if open_loop {
        for req in &requests {
            writeln!(writer, "{req}").map_err(|e| e.to_string())?;
        }
        writer.flush().map_err(|e| e.to_string())?;
        for _ in &requests {
            responses.push(read_line(&mut reader)?);
        }
    } else {
        for req in &requests {
            writeln!(writer, "{req}").map_err(|e| e.to_string())?;
            writer.flush().map_err(|e| e.to_string())?;
            responses.push(read_line(&mut reader)?);
        }
    }

    writeln!(writer, r#"{{"cmd": "session-close", "session": {id}}}"#)
        .map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    responses.push(read_line(&mut reader)?);
    Ok(responses)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
    if n == 0 {
        return Err("server closed the connection".to_string());
    }
    Ok(line.trim_end().to_string())
}
