//! `evprop-loadgen` — deterministic TCP load generator for `evprop
//! serve --listen`.
//!
//! ```text
//! evprop-loadgen <file.bif> --addr HOST:PORT --queries N
//!                [--seed S] [--connections C] [--out FILE] [--open-loop] [--timing]
//! ```
//!
//! Generates the same pseudo-random query stream for a given
//! `(file, N, seed)` triple, drives it over `C` connections
//! (round-robin), and writes one response line per request — in
//! request order per connection — to `--out` (default stdout). With a
//! single connection the output is fully deterministic, which the CI
//! smoke test diffs against a golden file.
//!
//! Closed loop (default): each connection waits for a response before
//! sending its next request, and the summary reports end-to-end
//! latency. Open loop (`--open-loop`): each connection writes all its
//! requests up front and drains responses afterwards — the overload
//! pattern that exercises the server-side admission queue.
//!
//! `--timing` sets `"timing": true` on every request, so each success
//! response carries the opt-in `queue_us`/`exec_us`/`shard` fields.
//! Timed responses are *not* golden-comparable (the microsecond values
//! vary run to run); the flag exists so smoke jobs can assert the
//! fields appear on demand while the default stream stays byte-stable.

use evprop_bayesnet::bif::{self, BifNetwork};
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage:
  evprop-loadgen <file.bif> --addr HOST:PORT --queries N [--seed S] [--connections C] [--out FILE] [--open-loop] [--timing]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The same deterministic query scheme as `evprop serve`: one target,
/// at most one hard-evidence observation, target and evidence distinct.
fn request_lines(bif: &BifNetwork, n: usize, seed: u64, timing: bool) -> Vec<String> {
    let net = &bif.network;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vars = net.num_vars() as u32;
    (0..n)
        .map(|_| {
            let target = rng.gen_range(0..vars);
            let mut line = format!(r#"{{"target": "{}""#, bif.var_names[target as usize]);
            if vars > 1 {
                let mut obs = rng.gen_range(0..vars);
                while obs == target {
                    obs = rng.gen_range(0..vars);
                }
                let card = net.var(evprop_potential::VarId(obs)).cardinality();
                let state = rng.gen_range(0..card);
                line.push_str(&format!(
                    r#", "evidence": {{"{}": "{}"}}"#,
                    bif.var_names[obs as usize], bif.state_names[obs as usize][state]
                ));
            }
            if timing {
                line.push_str(r#", "timing": true"#);
            }
            line.push('}');
            line
        })
        .collect()
}

fn run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("loadgen needs a BIF file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let bif = bif::parse(&src).map_err(|e| e.to_string())?;

    let addr = flag_value(args, "--addr").ok_or("--addr HOST:PORT is required")?;
    let queries: usize = flag_value(args, "--queries")
        .ok_or("--queries N is required")?
        .parse()
        .map_err(|_| "--queries must be a number".to_string())?;
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed must be a number".to_string())?;
    let connections: usize = flag_value(args, "--connections")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "--connections must be a number".to_string())?;
    if connections == 0 {
        return Err("--connections must be at least 1".to_string());
    }
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let timing = args.iter().any(|a| a == "--timing");

    let lines = request_lines(&bif, queries, seed, timing);
    // Round-robin split keeps per-connection order deterministic.
    let per_conn: Vec<Vec<String>> = (0..connections)
        .map(|c| lines.iter().skip(c).step_by(connections).cloned().collect())
        .collect();

    let started = Instant::now();
    let mut workers = Vec::new();
    for batch in per_conn {
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || drive(&addr, &batch, open_loop)));
    }
    let mut responses: Vec<Vec<String>> = Vec::new();
    for w in workers {
        responses.push(w.join().map_err(|_| "connection thread panicked")??);
    }
    let elapsed = started.elapsed();

    let mut out: Box<dyn Write> = match flag_value(args, "--out") {
        Some(file) => Box::new(BufWriter::new(
            std::fs::File::create(file).map_err(|e| format!("cannot create '{file}': {e}"))?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout())),
    };
    let total: usize = responses.iter().map(Vec::len).sum();
    for conn in &responses {
        for line in conn {
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())?;

    eprintln!(
        "loadgen: {} responses over {} connection(s) in {:.3}s ({:.0} q/s, {})",
        total,
        connections,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
        if open_loop {
            "open loop"
        } else {
            "closed loop"
        },
    );
    Ok(())
}

/// Drives one connection; returns its responses in request order.
fn drive(addr: &str, requests: &[String], open_loop: bool) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());

    let read_line = |reader: &mut BufReader<TcpStream>| -> Result<String, String> {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(line.trim_end().to_string())
    };

    if open_loop {
        for req in requests {
            writeln!(writer, "{req}").map_err(|e| e.to_string())?;
        }
        writer.flush().map_err(|e| e.to_string())?;
        for _ in requests {
            responses.push(read_line(&mut reader)?);
        }
    } else {
        for req in requests {
            writeln!(writer, "{req}").map_err(|e| e.to_string())?;
            writer.flush().map_err(|e| e.to_string())?;
            responses.push(read_line(&mut reader)?);
        }
    }
    Ok(responses)
}
