//! **evprop-serve** — sharded concurrent-query serving runtime with
//! admission control and a TCP front-end.
//!
//! The engines in `evprop-core` answer one propagation at a time: a
//! [`ShardState`](evprop_core::ShardState) serializes jobs on its
//! worker pool because the shared table arena demands it. This crate
//! turns that single-file engine into a *service*:
//!
//! * [`ShardedRuntime`] — N shards, each its own pool + recycled
//!   arenas, so N queries run concurrently while each shard keeps the
//!   serialized-jobs invariant locally;
//! * [`AdmissionQueue`] — a bounded MPMC queue in front of the shards:
//!   producers block ([`ShardedRuntime::submit`]) or shed load
//!   ([`ShardedRuntime::try_submit`] → [`ServeError::Overloaded`])
//!   when it fills, and dispatchers micro-batch what they drain;
//! * [`RuntimeStats`] — per-shard and aggregate serving metrics
//!   (served/errors, approximate p50/p95/p99 latency, busy/idle time,
//!   queue high-water);
//! * [`TcpServer`] — a std-only newline-delimited-JSON front-end
//!   (`evprop serve --listen ADDR`), thread-per-connection, with
//!   introspection commands (`{"cmd": "stats"}`, `{"cmd": "trace"}`)
//!   and opt-in per-query `queue_us`/`exec_us` timing (schema
//!   documented on [`parse_request_line`]);
//! * **stateful sessions** — `session-open` / `session-set` /
//!   `session-retract` / `session-query` / `session-close` protocol
//!   commands backed by `evprop-incremental`: each open session pins
//!   resident calibrated tables to one shard and answers repeat
//!   queries by dirty-slice propagation instead of full repropagation
//!   (bounded table, TTL eviction, counters on `{"cmd": "stats"}`);
//! * **multi-model serving** — boot with
//!   [`ShardedRuntime::with_registry`] and every query resolves its
//!   model (an optional `"model"` field, or the default alias) against
//!   an `evprop-registry` [`ModelRegistry`](evprop_registry::ModelRegistry):
//!   `model-load` / `model-swap` / `model-unload` / `model-list`
//!   protocol commands load and retire versions while the dispatchers
//!   keep serving, in-flight queries and open sessions pin the exact
//!   version answering them, and alias swaps land on the next
//!   submission;
//! * **deadline-aware, fault-tolerant serving** — queries carry an
//!   optional `"deadline_ms"`: already-expired work is shed at dequeue
//!   (never executed) and in-flight work is cancelled cooperatively at
//!   task-graph boundaries; dead pool worker threads are reaped and
//!   respawned, failing only the job they were running; the
//!   `{"cmd": "drain"}` command closes admission, answers everything
//!   already admitted, and lets the host exit cleanly
//!   ([`ShardedRuntime::drain`], [`TcpServer::wait_for_drain`]); and
//!   [`ServerOptions`] bounds per-connection line length, idle time,
//!   and total connections.
//!
//! ```
//! use evprop_bayesnet::networks;
//! use evprop_core::{InferenceSession, Query};
//! use evprop_potential::{EvidenceSet, VarId};
//! use evprop_serve::{RuntimeConfig, ShardedRuntime};
//!
//! let session = InferenceSession::from_network(&networks::asia())?;
//! let rt = ShardedRuntime::new(session, RuntimeConfig::new(2, 1));
//! let marginal = rt.query(Query::new(VarId(3), EvidenceSet::new()))?;
//! assert!((marginal.sum() - 1.0).abs() < 1e-9);
//! # Ok::<(), evprop_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metrics;
mod protocol;
mod queue;
mod runtime;
mod server;
mod sessions;

pub use metrics::{quantile_of, Counter, FaultStats, LatencyHistogram, RuntimeStats, ShardStats};
pub use protocol::{
    format_drain_ack, format_error, format_model_list, format_model_loaded, format_model_swapped,
    format_model_unloaded, format_response, format_response_timed, format_session_ack,
    format_session_opened, format_session_response, format_stats, format_trace, parse_json,
    parse_request, parse_request_line, parse_request_value, request_model, request_session,
    with_model_tag, Json, ModelNames, NumericNames, Request,
};
pub use queue::{AdmissionQueue, PushError};
pub use runtime::{
    QuerySummary, QueryTiming, RuntimeConfig, ServeError, ServeResult, ShardedRuntime, Ticket,
};
pub use server::{ServerOptions, TcpServer};
pub use sessions::SessionTableStats;
