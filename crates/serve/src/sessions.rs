//! The session table behind the stateful protocol commands: bounded,
//! TTL-evicted, with per-shard affinity.
//!
//! Each open session pins one [`IncrementalSession`] (resident
//! calibrated tables) to one shard, so its arena buffers always run on
//! the same worker pool. The table is bounded ([`SessionLimit`] when
//! full after sweeping expired entries) and idle sessions are lazily
//! evicted on the next table access once their TTL elapses — there is
//! no background reaper thread to shut down.
//!
//! [`SessionLimit`]: crate::runtime::ServeError::SessionLimit

use evprop_incremental::{IncrementalSession, SessionStats};
use evprop_registry::ModelHandle;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One open session: the wrapped incremental session plus its shard
/// affinity and idle clock.
pub(crate) struct SessionEntry {
    /// The shard whose pool executes every propagation of this session.
    pub shard: usize,
    /// The session proper; locked for the duration of each command.
    pub session: Arc<Mutex<IncrementalSession>>,
    /// The registry version this session opened against, if the server
    /// runs a registry. Holding the `Arc` *is* the pin: the version can
    /// be unloaded or evicted from the registry, but its compiled model
    /// stays alive until this session closes or expires.
    pub handle: Option<Arc<ModelHandle>>,
    last_used: Instant,
}

/// Why [`SessionTable::open`] failed.
#[derive(Debug)]
pub(crate) enum OpenError<E> {
    /// The table is still full after sweeping expired entries.
    Full,
    /// The `make` closure failed; nothing was inserted.
    Make(E),
}

/// Counters of the session table, plus the merged propagation counters
/// of every session it has hosted (live and retired).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionTableStats {
    /// Sessions currently open.
    pub open: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed explicitly by the client.
    pub closed: u64,
    /// Sessions evicted after their idle TTL elapsed.
    pub expired: u64,
    /// Open attempts rejected because the table was full.
    pub rejected: u64,
    /// Query counters merged across all sessions — cached vs
    /// incremental vs full answers, stale-edge totals, and the
    /// dirty-clique histogram.
    pub propagation: SessionStats,
}

/// Bounded, TTL-evicted map from session id to [`SessionEntry`].
pub(crate) struct SessionTable {
    capacity: usize,
    ttl: Duration,
    inner: Mutex<TableInner>,
}

struct TableInner {
    next_id: u64,
    round_robin: usize,
    entries: HashMap<u64, SessionEntry>,
    opened: u64,
    closed: u64,
    expired: u64,
    rejected: u64,
    /// Counters inherited from closed/expired sessions; live sessions
    /// are merged in at snapshot time.
    retired: SessionStats,
}

impl SessionTable {
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        SessionTable {
            capacity,
            ttl,
            inner: Mutex::new(TableInner {
                next_id: 1,
                round_robin: 0,
                entries: HashMap::new(),
                opened: 0,
                closed: 0,
                expired: 0,
                rejected: 0,
                retired: SessionStats::default(),
            }),
        }
    }

    /// Opens a session built by `make` (called with the assigned shard
    /// index), sweeping expired entries first. `make` returns the
    /// session plus the registry handle it pinned (if any) — it runs
    /// under the table lock, *after* the capacity check and *before*
    /// the insert, so its final checks (is the pinned model still
    /// loadable?) are atomic with the insertion: a `model-unload`
    /// racing the open can never leave a session pinning a model the
    /// unload already observed as unpinned. A failed `make` inserts
    /// nothing and consumes no id.
    pub fn open<E>(
        &self,
        num_shards: usize,
        make: impl FnOnce(usize) -> Result<(IncrementalSession, Option<Arc<ModelHandle>>), E>,
    ) -> Result<(u64, usize), OpenError<E>> {
        let mut inner = self.inner.lock();
        Self::sweep(&mut inner, self.ttl);
        if inner.entries.len() >= self.capacity {
            inner.rejected += 1;
            return Err(OpenError::Full);
        }
        let shard = inner.round_robin % num_shards.max(1);
        let (session, handle) = make(shard).map_err(OpenError::Make)?;
        inner.round_robin = inner.round_robin.wrapping_add(1);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.insert(
            id,
            SessionEntry {
                shard,
                session: Arc::new(Mutex::new(session)),
                handle,
                last_used: Instant::now(),
            },
        );
        inner.opened += 1;
        Ok((id, shard))
    }

    /// Looks up a live session, refreshing its idle clock; also returns
    /// the registry handle the session pinned, so session queries count
    /// toward their model's served total. Expired entries are swept
    /// first, so a session past its TTL is gone even when it is the one
    /// being addressed.
    #[allow(clippy::type_complexity)]
    pub fn get(
        &self,
        id: u64,
    ) -> Option<(
        usize,
        Arc<Mutex<IncrementalSession>>,
        Option<Arc<ModelHandle>>,
    )> {
        let mut inner = self.inner.lock();
        Self::sweep(&mut inner, self.ttl);
        let entry = inner.entries.get_mut(&id)?;
        entry.last_used = Instant::now();
        Some((
            entry.shard,
            Arc::clone(&entry.session),
            entry.handle.clone(),
        ))
    }

    /// Closes a session, folding its counters into the retired totals.
    /// `false` when the id is unknown (or already expired).
    pub fn close(&self, id: u64) -> bool {
        let mut inner = self.inner.lock();
        Self::sweep(&mut inner, self.ttl);
        match inner.entries.remove(&id) {
            Some(entry) => {
                let stats = entry.session.lock().stats().clone();
                inner.retired.merge(&stats);
                inner.closed += 1;
                true
            }
            None => false,
        }
    }

    /// Closes every open session (graceful-drain path), folding each
    /// one's counters into the retired totals exactly as an explicit
    /// close would. Returns how many sessions were closed.
    pub fn close_all(&self) -> usize {
        let entries: Vec<SessionEntry> = {
            let mut inner = self.inner.lock();
            inner.entries.drain().map(|(_, e)| e).collect()
        };
        // Collect counters outside the table lock (a connection thread
        // may hold a session lock mid-propagation), then fold them in.
        let mut merged = SessionStats::default();
        for entry in &entries {
            merged.merge(entry.session.lock().stats());
        }
        let mut inner = self.inner.lock();
        inner.retired.merge(&merged);
        inner.closed += entries.len() as u64;
        entries.len()
    }

    /// Point-in-time counters: table totals plus propagation counters
    /// merged across retired *and* currently open sessions.
    pub fn stats(&self) -> SessionTableStats {
        let mut inner = self.inner.lock();
        Self::sweep(&mut inner, self.ttl);
        let mut propagation = inner.retired.clone();
        let live: Vec<Arc<Mutex<IncrementalSession>>> = inner
            .entries
            .values()
            .map(|e| Arc::clone(&e.session))
            .collect();
        let snapshot = SessionTableStats {
            open: inner.entries.len(),
            opened: inner.opened,
            closed: inner.closed,
            expired: inner.expired,
            rejected: inner.rejected,
            propagation: SessionStats::default(),
        };
        drop(inner); // never hold the table lock across session locks
        for session in live {
            propagation.merge(session.lock().stats());
        }
        SessionTableStats {
            propagation,
            ..snapshot
        }
    }

    /// Whether any session was ever opened — the stats protocol omits
    /// the whole sessions object until then, keeping the stateless
    /// golden transcript byte-identical.
    pub fn ever_used(&self) -> bool {
        let inner = self.inner.lock();
        inner.opened > 0 || inner.rejected > 0
    }

    fn sweep(inner: &mut TableInner, ttl: Duration) {
        if inner.entries.is_empty() {
            return;
        }
        let now = Instant::now();
        let dead: Vec<u64> = inner
            .entries
            .iter()
            .filter(|(_, e)| now.duration_since(e.last_used) >= ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            if let Some(entry) = inner.entries.remove(&id) {
                let stats = entry.session.lock().stats().clone();
                inner.retired.merge(&stats);
                inner.expired += 1;
            }
        }
    }
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SessionTable")
            .field("capacity", &self.capacity)
            .field("ttl", &self.ttl)
            .field("open", &inner.entries.len())
            .field("opened", &inner.opened)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_core::CompiledModel;
    use evprop_core::InferenceSession;
    use std::sync::Arc as StdArc;

    fn asia_model() -> StdArc<CompiledModel> {
        let session = InferenceSession::from_network(&evprop_bayesnet::networks::asia()).unwrap();
        StdArc::clone(session.model())
    }

    fn ok(
        model: &StdArc<CompiledModel>,
    ) -> Result<(IncrementalSession, Option<Arc<ModelHandle>>), ()> {
        Ok((IncrementalSession::new(StdArc::clone(model)), None))
    }

    #[test]
    fn ids_are_sequential_and_shards_round_robin() {
        let model = asia_model();
        let table = SessionTable::new(8, Duration::from_secs(600));
        let (id1, s1) = table.open(3, |_| ok(&model)).unwrap();
        let (id2, s2) = table.open(3, |_| ok(&model)).unwrap();
        let (id3, s3) = table.open(3, |_| ok(&model)).unwrap();
        let (id4, s4) = table.open(3, |_| ok(&model)).unwrap();
        assert_eq!((id1, id2, id3, id4), (1, 2, 3, 4));
        assert_eq!((s1, s2, s3, s4), (0, 1, 2, 0));
        // Affinity is sticky: the looked-up shard matches the assigned one.
        assert_eq!(table.get(id2).unwrap().0, 1);
        assert!(table.get(99).is_none());
    }

    #[test]
    fn capacity_rejects_and_close_frees() {
        let model = asia_model();
        let table = SessionTable::new(2, Duration::from_secs(600));
        let (a, _) = table.open(1, |_| ok(&model)).unwrap();
        table.open(1, |_| ok(&model)).unwrap();
        assert!(matches!(
            table.open(1, |_| ok(&model)),
            Err(OpenError::Full)
        ));
        assert!(table.close(a));
        assert!(!table.close(a), "double close reports unknown");
        table.open(1, |_| ok(&model)).unwrap();
        let stats = table.stats();
        assert_eq!(stats.open, 2);
        assert_eq!(stats.opened, 3);
        assert_eq!(stats.closed, 1);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn idle_sessions_expire_lazily() {
        let model = asia_model();
        let table = SessionTable::new(4, Duration::from_millis(20));
        let (id, _) = table.open(1, |_| ok(&model)).unwrap();
        assert!(table.get(id).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(table.get(id).is_none(), "past-TTL session is gone");
        let stats = table.stats();
        assert_eq!(stats.open, 0);
        assert_eq!(stats.expired, 1);
    }

    #[test]
    fn ever_used_flips_only_after_first_open() {
        let model = asia_model();
        let table = SessionTable::new(4, Duration::from_secs(600));
        assert!(!table.ever_used());
        let (id, _) = table.open(1, |_| ok(&model)).unwrap();
        table.close(id);
        assert!(table.ever_used(), "retired sessions still count");
    }
}
