//! Serving metrics, backed by the shared metric primitives of
//! `evprop-trace` ([`Counter`], [`LatencyHistogram`]): per-shard live
//! counters updated by dispatcher threads, snapshotted into plain
//! [`ShardStats`] / [`RuntimeStats`] structs on demand.
//!
//! Keeping the primitives in one crate means the scheduler's
//! `ThreadStats`, the timeline analyzer, and these serving stats all
//! count with the same implementation — the numbers cannot drift.

use crate::sessions::SessionTableStats;
use evprop_registry::RegistryStats;
use evprop_taskgraph::PlanCacheStats;
use std::time::Duration;

pub use evprop_trace::{quantile_of, Counter, LatencyHistogram};

/// Live counters of one shard, updated by its dispatcher thread.
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    pub served: Counter,
    pub errors: Counter,
    pub batches: Counter,
    pub busy_nanos: Counter,
    pub latency: LatencyHistogram,
    /// Queries shed at dequeue because their deadline had already
    /// expired (the propagation never started).
    pub shed: Counter,
    /// In-flight propagations stopped early by a fired deadline token.
    pub cancelled: Counter,
    /// Queries failed by a worker panic or thread death.
    pub panics: Counter,
}

impl ShardMetrics {
    pub fn snapshot(&self, shard: usize, arenas_allocated: u64, wall: Duration) -> ShardStats {
        let busy = Duration::from_nanos(self.busy_nanos.get());
        ShardStats {
            shard,
            served: self.served.get(),
            errors: self.errors.get(),
            batches: self.batches.get(),
            busy,
            idle: wall.saturating_sub(busy),
            mean_latency: self.latency.mean(),
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
            arenas_allocated,
        }
    }
}

/// A point-in-time view of one shard.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Queries answered (including per-query errors).
    pub served: u64,
    /// Queries answered with an error.
    pub errors: u64,
    /// Dispatch rounds (each covers a micro-batch of ≥ 1 queries).
    pub batches: u64,
    /// Time spent inside dispatch rounds.
    pub busy: Duration,
    /// Runtime lifetime minus busy time.
    pub idle: Duration,
    /// Mean enqueue-to-answer latency.
    pub mean_latency: Duration,
    /// Median enqueue-to-answer latency (approximate).
    pub p50: Duration,
    /// 95th-percentile latency (approximate).
    pub p95: Duration,
    /// 99th-percentile latency (approximate).
    pub p99: Duration,
    /// Cold-start arena allocations on this shard.
    pub arenas_allocated: u64,
}

/// Aggregate fault-tolerance counters across every shard. All four
/// stay zero on a healthy runtime serving deadline-free traffic, and
/// the stats protocol omits the whole object until one of them moves,
/// keeping pre-fault transcripts byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Queries shed at dequeue with an already-expired deadline: they
    /// consumed queue capacity but never a worker cycle.
    pub shed: u64,
    /// In-flight propagations stopped early at a task boundary by a
    /// fired deadline token.
    pub cancelled: u64,
    /// Queries failed by a worker panic or thread death.
    pub panics: u64,
    /// Dead pool worker threads reaped and respawned by supervision.
    pub restarts: u64,
}

impl FaultStats {
    /// Whether any counter has moved — the stats protocol gates the
    /// `"faults"` object on this.
    pub fn any(&self) -> bool {
        self.shed != 0 || self.cancelled != 0 || self.panics != 0 || self.restarts != 0
    }
}

/// A point-in-time view of the whole runtime.
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Total queries answered across shards.
    pub served: u64,
    /// Total queries answered with an error.
    pub errors: u64,
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Deepest the admission queue has ever been.
    pub queue_high_water: usize,
    /// Mean enqueue-to-answer latency across shards.
    pub mean_latency: Duration,
    /// Aggregate median latency (approximate).
    pub p50: Duration,
    /// Aggregate 95th-percentile latency (approximate).
    pub p95: Duration,
    /// Aggregate 99th-percentile latency (approximate).
    pub p99: Duration,
    /// Time since the runtime started.
    pub uptime: Duration,
    /// Kernel-plan cache counters of the served model (hits and misses
    /// of the scheduler's δ-subrange lookups, plus distinct interned
    /// plans). `None` when the snapshot source has no plan cache to
    /// report; the stats protocol omits the field entirely in that
    /// case, so existing consumers see byte-identical output.
    pub plan_cache: Option<PlanCacheStats>,
    /// Stable name of the SIMD kernel backend answering queries
    /// (`scalar`, `sse2`, `avx2`, `portable`). Every backend computes
    /// bit-identical tables; this is purely observability.
    pub kernel_backend: &'static str,
    /// Incremental-session counters: open/opened/closed/expired totals
    /// plus the merged cached-vs-incremental-vs-full query breakdown.
    /// `None` until the first `session-open` reaches the runtime; the
    /// stats protocol omits the field entirely in that case, so the
    /// stateless golden transcript stays byte-identical.
    pub sessions: Option<SessionTableStats>,
    /// Model-registry counters (loads, evictions, swaps, resident and
    /// still-pinned unlinked bytes). `None` unless the runtime was
    /// booted in registry mode, so single-model servers keep their
    /// pre-registry stats lines byte-identical.
    pub registry: Option<RegistryStats>,
    /// Fault-tolerance counters (deadline sheds, in-flight
    /// cancellations, worker panics, supervised restarts). `None` until
    /// any of them moves, so fault-free transcripts stay byte-identical.
    pub faults: Option<FaultStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_metrics_snapshot_uses_shared_primitives() {
        let m = ShardMetrics::default();
        m.served.add(3);
        m.errors.incr();
        m.batches.incr();
        m.busy_nanos.add(1_500_000);
        for micros in [10u64, 20, 40] {
            m.latency.record(Duration::from_micros(micros));
        }
        let s = m.snapshot(1, 2, Duration::from_millis(10));
        assert_eq!(s.shard, 1);
        assert_eq!(s.served, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.busy, Duration::from_nanos(1_500_000));
        assert_eq!(s.idle, Duration::from_millis(10) - s.busy);
        assert_eq!(s.arenas_allocated, 2);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn idle_saturates_when_busy_exceeds_wall() {
        let m = ShardMetrics::default();
        m.busy_nanos.add(5_000);
        let s = m.snapshot(0, 0, Duration::from_nanos(1_000));
        assert_eq!(s.idle, Duration::ZERO);
    }
}
