//! Lock-free serving metrics: a log₂-bucketed latency histogram plus
//! per-shard counters, snapshotted into plain structs on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets. Bucket `i` holds samples whose nanosecond
/// value has bit length `i` (bucket 0 is the zero sample), so the
/// covered range tops out far beyond any plausible query latency.
const BUCKETS: usize = 64;

/// A concurrent latency histogram with power-of-two buckets.
///
/// Recording is two relaxed atomic increments — cheap enough to sit on
/// the per-query hot path. Quantiles are approximate (upper bound of
/// the bucket containing the rank), which is plenty for p50/p95/p99
/// over latencies spanning orders of magnitude.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    total: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            sum_nanos: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    fn bucket(nanos: u64) -> usize {
        (u64::BITS - nanos.leading_zeros()) as usize % BUCKETS
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::bucket(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero if nothing was recorded.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / n)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank. Zero if nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        quantile_of(&snapshot, q)
    }

    /// The raw bucket counts, for merging into aggregates.
    pub(crate) fn snapshot_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }
}

/// Quantile over raw log₂ bucket counts (shared by per-shard and
/// merged aggregate views).
pub(crate) fn quantile_of(counts: &[u64], q: f64) -> Duration {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // upper bound of bucket i: all values of bit length i
            let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
            return Duration::from_nanos(upper);
        }
    }
    Duration::from_nanos(u64::MAX)
}

/// Live counters of one shard, updated by its dispatcher thread.
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    pub served: AtomicU64,
    pub errors: AtomicU64,
    pub batches: AtomicU64,
    pub busy_nanos: AtomicU64,
    pub latency: LatencyHistogram,
}

impl ShardMetrics {
    pub fn snapshot(&self, shard: usize, arenas_allocated: u64, wall: Duration) -> ShardStats {
        let busy = Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed));
        ShardStats {
            shard,
            served: self.served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy,
            idle: wall.saturating_sub(busy),
            mean_latency: self.latency.mean(),
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
            arenas_allocated,
        }
    }
}

/// A point-in-time view of one shard.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Queries answered (including per-query errors).
    pub served: u64,
    /// Queries answered with an error.
    pub errors: u64,
    /// Dispatch rounds (each covers a micro-batch of ≥ 1 queries).
    pub batches: u64,
    /// Time spent inside dispatch rounds.
    pub busy: Duration,
    /// Runtime lifetime minus busy time.
    pub idle: Duration,
    /// Mean enqueue-to-answer latency.
    pub mean_latency: Duration,
    /// Median enqueue-to-answer latency (approximate).
    pub p50: Duration,
    /// 95th-percentile latency (approximate).
    pub p95: Duration,
    /// 99th-percentile latency (approximate).
    pub p99: Duration,
    /// Cold-start arena allocations on this shard.
    pub arenas_allocated: u64,
}

/// A point-in-time view of the whole runtime.
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Total queries answered across shards.
    pub served: u64,
    /// Total queries answered with an error.
    pub errors: u64,
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Deepest the admission queue has ever been.
    pub queue_high_water: usize,
    /// Mean enqueue-to-answer latency across shards.
    pub mean_latency: Duration,
    /// Aggregate median latency (approximate).
    pub p50: Duration,
    /// Aggregate 95th-percentile latency (approximate).
    pub p95: Duration,
    /// Aggregate 99th-percentile latency (approximate).
    pub p99: Duration,
    /// Time since the runtime started.
    pub uptime: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_bracketing() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 20, 40, 80, 5000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        // p50 falls in the bucket of the 40 µs sample: [32768, 65535] ns
        assert!(p50 >= Duration::from_micros(40) && p50 < Duration::from_micros(80));
        // p99 falls in the 5 ms sample's bucket
        assert!(p99 >= Duration::from_micros(5000));
        assert!(h.mean() >= Duration::from_micros(1000));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn zero_duration_sample_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }
}
