//! The sharded serving runtime: N shards, each owning one
//! [`ShardState`] (resident worker pool + recycled arenas), fed from a
//! single bounded admission queue.
//!
//! # Why shards
//!
//! One [`ShardState`] serializes jobs on its pool — that is the arena
//! safety invariant — so a single shard answers one query at a time no
//! matter how many clients connect. Sharding multiplies the serving
//! capacity: K shards answer K queries concurrently, each on its own
//! pool and arenas, so the serialized-jobs invariant still holds *per
//! shard*. The same total thread budget can be split depth-first
//! (1 shard × P threads: lowest single-query latency) or width-first
//! (P shards × 1 thread: highest throughput under concurrent load);
//! [`RuntimeConfig`] makes the split explicit.
//!
//! # Dataflow
//!
//! Clients [`submit`](ShardedRuntime::submit) queries into the
//! admission queue (blocking on backpressure, or failing fast via
//! [`try_submit`](ShardedRuntime::try_submit)) and get a [`Ticket`].
//! Each shard runs one dispatcher thread: pop a job, opportunistically
//! drain up to `max_batch - 1` more (micro-batching amortizes the
//! arena checkout), answer them all on one arena, fulfill the tickets.

use crate::metrics::{quantile_of, FaultStats, RuntimeStats, ShardMetrics};
use crate::queue::{AdmissionQueue, PushError};
use crate::sessions::{OpenError, SessionTable};
use evprop_core::{
    CalibratedState, CompiledModel, EngineError, InferenceSession, Query, ShardState,
};
use evprop_incremental::{IncrementalSession, QueryMode};
use evprop_potential::{PotentialTable, VarId};
use evprop_registry::{ModelHandle, ModelRegistry, RegistryError};
use evprop_sched::{CancelToken, SchedulerConfig, TableArena};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many completed queries the runtime remembers for the `trace`
/// protocol command ([`ShardedRuntime::recent`]).
const RECENT_CAP: usize = 64;

/// Errors surfaced to serving clients.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The admission queue is full (only from the non-blocking path).
    Overloaded,
    /// The runtime is shutting down; no new queries are admitted.
    ShuttingDown,
    /// The referenced session id is not open (never opened, already
    /// closed, or evicted after its idle TTL).
    UnknownSession(u64),
    /// The session table is full; no new session can be opened until
    /// one closes or expires.
    SessionLimit,
    /// The query's deadline expired before a result was produced —
    /// either shed at dequeue (the propagation never started) or
    /// cancelled mid-flight at a task boundary. Either way no partial
    /// result escapes: a query that *does* complete is bit-identical to
    /// an undeadlined run. Carries the time the query spent queued, the
    /// usual culprit.
    DeadlineExceeded {
        /// Enqueue-to-verdict wait.
        queue: Duration,
    },
    /// The query was answered with an engine error.
    Engine(EngineError),
    /// A model-registry operation failed (unknown model or version,
    /// version mid-unload, bad name, failed warmup). Only produced by
    /// runtimes booted in registry mode or by requests naming a model.
    Registry(RegistryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full: query rejected"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::UnknownSession(id) => {
                write!(f, "unknown session {id} (closed, expired, or never opened)")
            }
            ServeError::SessionLimit => write!(f, "session table full: open rejected"),
            ServeError::DeadlineExceeded { queue } => {
                write!(
                    f,
                    "deadline_exceeded: queued {}us without completing",
                    queue.as_micros()
                )
            }
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Registry(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Registry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> Self {
        ServeError::Registry(e)
    }
}

/// Result alias for serving calls.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Shape of the runtime: how many shards, how the thread budget is
/// split, and how admission control behaves.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of shards (independent pools). Must be ≥ 1.
    pub shards: usize,
    /// Worker threads per shard. Total budget = `shards ×
    /// threads_per_shard` (+ one lightweight dispatcher per shard).
    pub threads_per_shard: usize,
    /// Admission-queue capacity: queries beyond this block (or are
    /// rejected on the non-blocking path).
    pub queue_depth: usize,
    /// Max queries a dispatcher answers per arena checkout (≥ 1).
    /// Micro-batching amortizes checkout and keeps a hot arena.
    pub max_batch: usize,
    /// Partition threshold δ forwarded to each shard's scheduler.
    pub delta: Option<usize>,
    /// Work-stealing flag forwarded to each shard's scheduler.
    pub work_stealing: bool,
    /// Max concurrently open incremental sessions; `session-open`
    /// beyond this is rejected with [`ServeError::SessionLimit`].
    pub session_capacity: usize,
    /// Idle time after which an open session may be evicted (lazily,
    /// on the next session-table access).
    pub session_ttl: Duration,
}

impl RuntimeConfig {
    /// `shards × threads_per_shard` with serving-friendly defaults
    /// (queue depth 64, micro-batches of up to 8, default δ).
    pub fn new(shards: usize, threads_per_shard: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(threads_per_shard >= 1, "need at least one thread per shard");
        RuntimeConfig {
            shards,
            threads_per_shard,
            queue_depth: 64,
            max_batch: 8,
            delta: Some(4096),
            work_stealing: false,
            session_capacity: 256,
            session_ttl: Duration::from_secs(600),
        }
    }

    /// Sets the max number of concurrently open sessions
    /// (builder-style).
    pub fn with_session_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "session capacity must be positive");
        self.session_capacity = capacity;
        self
    }

    /// Sets the session idle TTL (builder-style).
    pub fn with_session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = ttl;
        self
    }

    /// Sets the admission-queue capacity (builder-style).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must be positive");
        self.queue_depth = depth;
        self
    }

    /// Sets the micro-batch cap (builder-style); 1 disables batching.
    pub fn with_max_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "max batch must be positive");
        self.max_batch = batch;
        self
    }

    /// Disables δ-partitioning on every shard (builder-style). Partial
    /// propagations then run "literally the same arithmetic" as the
    /// sequential engine, making answers bit-identical to it.
    pub fn without_partitioning(mut self) -> Self {
        self.delta = None;
        self
    }

    /// Sets the partition threshold δ on every shard (builder-style).
    pub fn with_delta(mut self, delta: usize) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Enables work stealing on every shard (builder-style).
    pub fn with_stealing(mut self) -> Self {
        self.work_stealing = true;
        self
    }

    fn scheduler(&self) -> SchedulerConfig {
        let mut cfg = SchedulerConfig::with_threads(self.threads_per_shard);
        cfg.partition_threshold = self.delta;
        cfg.work_stealing = self.work_stealing;
        cfg
    }
}

/// Where one answered query spent its time, measured by the shard
/// dispatcher. All durations are wall-clock.
#[derive(Clone, Copy, Debug)]
pub struct QueryTiming {
    /// Enqueue to dispatch: admission-queue wait plus any time spent
    /// behind earlier queries of the same micro-batch.
    pub queue: Duration,
    /// The propagation itself (`posterior_on` on the shard's arena).
    pub exec: Duration,
    /// Which shard answered.
    pub shard: usize,
}

/// One entry of the recent-query ring ([`ShardedRuntime::recent`]):
/// a completed query and where its time went.
#[derive(Clone, Debug)]
pub struct QuerySummary {
    /// The queried variable.
    pub target: VarId,
    /// Whether the query succeeded.
    pub ok: bool,
    /// Queue/exec breakdown and the answering shard.
    pub timing: QueryTiming,
}

/// One-shot rendezvous between a dispatcher and a waiting client.
#[derive(Debug)]
struct ResponseSlot {
    result: Mutex<Option<(ServeResult<PotentialTable>, QueryTiming)>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, result: ServeResult<PotentialTable>, timing: QueryTiming) {
        *self.result.lock() = Some((result, timing));
        self.ready.notify_all();
    }

    fn wait(&self) -> (ServeResult<PotentialTable>, QueryTiming) {
        let mut guard = self.result.lock();
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            self.ready.wait(&mut guard);
        }
    }

    fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<(ServeResult<PotentialTable>, QueryTiming)> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.result.lock();
        loop {
            if let Some(r) = guard.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Timed condvar wait: wakes on fulfill, re-checks on
            // spurious wakeups, and gives up at the deadline — no
            // sleep-slice polling, no wasted latency on the fulfill.
            let _ = self.ready.wait_for(&mut guard, deadline - now);
        }
    }
}

/// Handle for one in-flight query: redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
    /// Exact `name@vN` tag of the version answering this query, when
    /// the submission named a model. Resolved at submit time, so the
    /// tag identifies the answering version even if the alias is
    /// swapped while the query is in flight.
    tag: Option<String>,
}

impl Ticket {
    /// The exact `name@vN` tag of the model version answering this
    /// query, when the submission named one (`None` for default-alias
    /// and non-registry submissions).
    pub fn model_tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// Blocks until the query is answered.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] if the query itself failed.
    pub fn wait(self) -> ServeResult<PotentialTable> {
        self.slot.wait().0
    }

    /// Blocks until the query is answered, also returning where its
    /// time went (even when the answer is an error).
    pub fn wait_timed(self) -> (ServeResult<PotentialTable>, QueryTiming) {
        self.slot.wait()
    }

    /// Waits up to `timeout`; `None` means still in flight (the ticket
    /// is consumed — intended for tests and best-effort clients).
    pub fn wait_timeout(self, timeout: Duration) -> Option<ServeResult<PotentialTable>> {
        self.slot.wait_timeout(timeout).map(|(r, _)| r)
    }
}

/// A query travelling through the admission queue.
struct Job {
    query: Query,
    enqueued: Instant,
    /// Absolute completion deadline, fixed at submit time. Expired jobs
    /// are shed at dequeue without ever starting a propagation; jobs
    /// already executing are cancelled cooperatively at task
    /// boundaries. `None` (the default) adds zero cost to the job.
    deadline: Option<Instant>,
    slot: Arc<ResponseSlot>,
    /// The registry version answering this query, resolved at submit
    /// time. Holding the `Arc` pins the version: an unload or eviction
    /// racing the queue can drop the registry's strong reference, but
    /// the compiled model stays alive until this job is answered.
    /// `None` on runtimes booted without a registry.
    handle: Option<Arc<ModelHandle>>,
}

struct Shard {
    state: ShardState,
    metrics: ShardMetrics,
}

/// The registry a runtime was booted against, plus the alias answering
/// queries that name no model.
struct RegistryBinding {
    registry: Arc<ModelRegistry>,
    default_model: String,
}

struct Inner {
    /// The one compiled model (domains + task graph + interned kernel
    /// plans) every shard serves. Shards share this `Arc` — they never
    /// copy the graph or recompile plans. In registry mode this is the
    /// default alias's version at boot; per-query resolution may
    /// override it job by job.
    model: Arc<CompiledModel>,
    /// Present iff the runtime was booted with
    /// [`ShardedRuntime::with_registry`]: every query then resolves a
    /// model (the `"model"` field or the default alias) at submit time.
    registry: Option<RegistryBinding>,
    queue: AdmissionQueue<Job>,
    shards: Vec<Shard>,
    max_batch: usize,
    started: Instant,
    /// Ring of the last [`RECENT_CAP`] completed queries, oldest first.
    recent: Mutex<VecDeque<QuerySummary>>,
    /// Open incremental sessions (bounded, TTL-evicted, shard-pinned).
    sessions: SessionTable,
    /// Lazily computed empty-evidence calibration, cloned into every
    /// session opened after the first — opening then costs one buffer
    /// copy instead of one full propagation, and a fresh session's
    /// first evidence-bearing query already runs incrementally.
    session_base: Mutex<Option<Arc<CalibratedState>>>,
}

impl Inner {
    fn remember(&self, summary: QuerySummary) {
        let mut ring = self.recent.lock();
        if ring.len() == RECENT_CAP {
            ring.pop_front();
        }
        ring.push_back(summary);
    }
}

/// The sharded serving runtime. See the [module docs](self).
pub struct ShardedRuntime {
    inner: Arc<Inner>,
    dispatchers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    config: RuntimeConfig,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("config", &self.config)
            .field("queue", &self.inner.queue)
            .finish_non_exhaustive()
    }
}

impl ShardedRuntime {
    /// Boots the runtime from a session, taking over its compiled
    /// model. Convenience for [`ShardedRuntime::from_model`].
    pub fn new(session: InferenceSession, config: RuntimeConfig) -> Self {
        Self::from_model(Arc::clone(session.model()), config)
    }

    /// Boots the runtime: builds `config.shards` shards (each spawning
    /// its resident worker pool) and one dispatcher thread per shard,
    /// all serving the **same** `Arc<CompiledModel>` — the compile step
    /// (junction tree, task graph, kernel-plan interning) happened
    /// exactly once, no matter how many shards or runtimes share it.
    pub fn from_model(model: Arc<CompiledModel>, config: RuntimeConfig) -> Self {
        Self::boot(model, None, config)
    }

    /// Boots the runtime in registry mode: queries resolve their model
    /// per submission — the request's `"model"` field, or
    /// `default_model` when absent — so alias swaps take effect on the
    /// very next query, loads and unloads happen while serving, and
    /// every in-flight query pins the exact version that answers it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when `default_model` does not resolve.
    pub fn with_registry(
        registry: Arc<ModelRegistry>,
        default_model: &str,
        config: RuntimeConfig,
    ) -> ServeResult<Self> {
        let handle = registry.resolve(default_model)?;
        let model = Arc::clone(handle.model());
        let binding = RegistryBinding {
            registry,
            default_model: default_model.to_string(),
        };
        Ok(Self::boot(model, Some(binding), config))
    }

    fn boot(
        model: Arc<CompiledModel>,
        registry: Option<RegistryBinding>,
        config: RuntimeConfig,
    ) -> Self {
        let shards = (0..config.shards)
            .map(|_| Shard {
                state: ShardState::new(config.scheduler()),
                metrics: ShardMetrics::default(),
            })
            .collect();
        let inner = Arc::new(Inner {
            model,
            registry,
            queue: AdmissionQueue::new(config.queue_depth),
            shards,
            max_batch: config.max_batch,
            started: Instant::now(),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_CAP)),
            sessions: SessionTable::new(config.session_capacity, config.session_ttl),
            session_base: Mutex::new(None),
        });
        let dispatchers = (0..config.shards)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("evprop-shard-{idx}"))
                    .spawn(move || dispatcher(&inner, idx))
                    .expect("spawn dispatcher thread")
            })
            .collect();
        ShardedRuntime {
            inner,
            dispatchers: Mutex::new(dispatchers),
            config,
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The compiled model this runtime serves, shared by every shard.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.inner.model
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The model registry this runtime was booted against, if any.
    pub fn registry(&self) -> Option<&Arc<ModelRegistry>> {
        self.inner.registry.as_ref().map(|b| &b.registry)
    }

    /// The alias answering queries that name no model (registry mode
    /// only).
    pub fn default_model(&self) -> Option<&str> {
        self.inner
            .registry
            .as_ref()
            .map(|b| b.default_model.as_str())
    }

    /// Resolves the model answering a submission: the named spec, or
    /// the default alias in registry mode, or the one compiled model
    /// otherwise (`None` — the dispatcher then uses `inner.model`).
    fn resolve_handle(&self, model: Option<&str>) -> ServeResult<Option<Arc<ModelHandle>>> {
        match (&self.inner.registry, model) {
            (Some(binding), spec) => {
                let spec = spec.unwrap_or(&binding.default_model);
                Ok(Some(binding.registry.resolve(spec)?))
            }
            (None, None) => Ok(None),
            (None, Some(spec)) => Err(ServeError::Registry(RegistryError::UnknownModel(
                spec.to_string(),
            ))),
        }
    }

    /// Submits a query, blocking while the admission queue is full.
    /// In registry mode the default alias is resolved at submit time,
    /// so an alias swap lands on the very next submission.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] if the runtime is stopping.
    pub fn submit(&self, query: Query) -> ServeResult<Ticket> {
        self.submit_model(query, None)
    }

    /// Submits a query against a named model (`"name"` for the alias,
    /// `"name@vN"` for an exact version), blocking while the admission
    /// queue is full. The version is resolved — and pinned — here, so
    /// the returned ticket's [`model_tag`](Ticket::model_tag) names the
    /// exact version that answers, even across a concurrent swap or
    /// unload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when the spec does not resolve (or the
    /// runtime has no registry); [`ServeError::ShuttingDown`] if the
    /// runtime is stopping.
    pub fn submit_model(&self, query: Query, model: Option<&str>) -> ServeResult<Ticket> {
        self.enqueue(query, model, None, true)
    }

    /// [`submit_model`](ShardedRuntime::submit_model) with an optional
    /// relative deadline. A query whose deadline expires while queued is
    /// shed at dequeue — it never starts a propagation — and one whose
    /// deadline fires mid-flight is cancelled cooperatively at the next
    /// task boundary; both resolve the ticket with
    /// [`ServeError::DeadlineExceeded`]. A query that completes despite
    /// a tight deadline returns its normal, bit-identical answer.
    ///
    /// # Errors
    ///
    /// As for [`submit_model`](ShardedRuntime::submit_model).
    pub fn submit_with_deadline(
        &self,
        query: Query,
        model: Option<&str>,
        deadline: Option<Duration>,
    ) -> ServeResult<Ticket> {
        self.enqueue(query, model, deadline, true)
    }

    /// Non-blocking
    /// [`submit_with_deadline`](ShardedRuntime::submit_with_deadline).
    ///
    /// # Errors
    ///
    /// As for [`try_submit_model`](ShardedRuntime::try_submit_model).
    pub fn try_submit_with_deadline(
        &self,
        query: Query,
        model: Option<&str>,
        deadline: Option<Duration>,
    ) -> ServeResult<Ticket> {
        self.enqueue(query, model, deadline, false)
    }

    fn enqueue(
        &self,
        query: Query,
        model: Option<&str>,
        deadline: Option<Duration>,
        blocking: bool,
    ) -> ServeResult<Ticket> {
        let handle = self.resolve_handle(model)?;
        let tag = model.and(handle.as_ref()).map(|h| h.tag());
        let slot = Arc::new(ResponseSlot::new());
        let now = Instant::now();
        let job = Job {
            query,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            slot: Arc::clone(&slot),
            handle,
        };
        if blocking {
            match self.inner.queue.push(job) {
                Ok(()) => Ok(Ticket { slot, tag }),
                Err(_) => Err(ServeError::ShuttingDown),
            }
        } else {
            match self.inner.queue.try_push(job) {
                Ok(()) => Ok(Ticket { slot, tag }),
                Err((_, PushError::Full)) => Err(ServeError::Overloaded),
                Err((_, PushError::Closed)) => Err(ServeError::ShuttingDown),
            }
        }
    }

    /// Submits without blocking: backpressure surfaces as
    /// [`ServeError::Overloaded`] instead of a wait.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full;
    /// [`ServeError::ShuttingDown`] if the runtime is stopping.
    pub fn try_submit(&self, query: Query) -> ServeResult<Ticket> {
        self.try_submit_model(query, None)
    }

    /// Non-blocking [`submit_model`](ShardedRuntime::submit_model).
    ///
    /// # Errors
    ///
    /// As for [`submit_model`](ShardedRuntime::submit_model), plus
    /// [`ServeError::Overloaded`] when the queue is full.
    pub fn try_submit_model(&self, query: Query, model: Option<&str>) -> ServeResult<Ticket> {
        self.enqueue(query, model, None, false)
    }

    /// Submit-and-wait convenience (closed-loop client).
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::submit`] and [`Ticket::wait`].
    pub fn query(&self, query: Query) -> ServeResult<PotentialTable> {
        self.submit(query)?.wait()
    }

    /// Submit-and-wait with a queue/exec timing breakdown attached.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::query`]; timing is only reported for
    /// answered queries.
    pub fn query_timed(&self, query: Query) -> ServeResult<(PotentialTable, QueryTiming)> {
        let (result, timing) = self.submit(query)?.wait_timed();
        result.map(|table| (table, timing))
    }

    /// The most recently completed queries (oldest first, at most 64)
    /// with their per-query queue/exec timing — the data behind the
    /// TCP protocol's `{"cmd": "trace"}` command.
    pub fn recent(&self) -> Vec<QuerySummary> {
        self.inner.recent.lock().iter().cloned().collect()
    }

    /// Attaches (or with `None`, detaches) a span sink recording shard
    /// `shard`'s scheduler events, arena checkouts, and query spans.
    /// Size the sink with `TraceSink::for_workers(threads_per_shard,
    /// …)`; takes effect from that shard's next dispatched query.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    #[cfg(feature = "trace")]
    pub fn attach_trace(&self, shard: usize, sink: Option<Arc<evprop_trace::TraceSink>>) {
        self.inner.shards[shard]
            .state
            .attach_trace(sink, shard as u32);
    }

    /// A point-in-time statistics snapshot across all shards, including
    /// the shared model's kernel-plan cache counters and the active
    /// SIMD kernel backend. With the `trace` feature, each snapshot
    /// also drops `plan-cache` and `kernel-backend` instants on the
    /// control row of every attached shard sink, so exported timelines
    /// carry the counter history alongside the scheduler spans.
    pub fn stats(&self) -> RuntimeStats {
        let plan_cache = self.inner.model.plan_stats();
        let kernel_backend = evprop_potential::simd::active().name();
        let mut faults = FaultStats::default();
        for s in &self.inner.shards {
            faults.shed += s.metrics.shed.get();
            faults.cancelled += s.metrics.cancelled.get();
            faults.panics += s.metrics.panics.get();
            faults.restarts += s.state.pool_restarts();
        }
        #[cfg(feature = "trace")]
        for shard in &self.inner.shards {
            shard.state.trace_instant(evprop_trace::SpanKind::Faults {
                shed: faults.shed,
                cancelled: faults.cancelled,
                panics: faults.panics,
                restarts: faults.restarts,
            });
            shard
                .state
                .trace_instant(evprop_trace::SpanKind::PlanCache {
                    hits: plan_cache.hits,
                    misses: plan_cache.misses,
                    interned: plan_cache.interned,
                });
            shard
                .state
                .trace_instant(evprop_trace::SpanKind::KernelBackend {
                    backend: kernel_backend,
                });
        }
        let wall = self.inner.started.elapsed();
        let shards: Vec<_> = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.metrics.snapshot(i, s.state.arenas_allocated(), wall))
            .collect();
        let mut merged = vec![0u64; 64];
        let mut sum_nanos = 0u64;
        for s in &self.inner.shards {
            for (m, c) in merged.iter_mut().zip(s.metrics.latency.snapshot_counts()) {
                *m += c;
            }
            sum_nanos += s.metrics.latency.sum_nanos();
        }
        let served: u64 = shards.iter().map(|s| s.served).sum();
        RuntimeStats {
            served,
            errors: shards.iter().map(|s| s.errors).sum(),
            queue_depth: self.inner.queue.len(),
            queue_high_water: self.inner.queue.high_water(),
            mean_latency: sum_nanos
                .checked_div(served)
                .map_or(Duration::ZERO, Duration::from_nanos),
            p50: quantile_of(&merged, 0.50),
            p95: quantile_of(&merged, 0.95),
            p99: quantile_of(&merged, 0.99),
            uptime: wall,
            shards,
            plan_cache: Some(plan_cache),
            kernel_backend,
            sessions: self
                .inner
                .sessions
                .ever_used()
                .then(|| self.inner.sessions.stats()),
            registry: self.inner.registry.as_ref().map(|b| b.registry.stats()),
            faults: faults.any().then_some(faults),
        }
    }

    // ------------------------------------------------- session commands
    //
    // Session commands run on the calling (connection) thread against
    // the pinned shard's `ShardState` directly — the pool serializes
    // jobs internally, so this is safe alongside the dispatcher's
    // stateless queries on the same shard. Pinning keeps a session's
    // resident arena on one pool for its whole lifetime.

    /// Opens an incremental session pinned to one shard (round-robin)
    /// and returns its id. The first open calibrates the model once
    /// under empty evidence; later opens clone that snapshot, so a new
    /// session starts with resident state and its first query under
    /// fresh evidence already runs incrementally.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionLimit`] when the table is full;
    /// [`ServeError::Engine`] if the base calibration fails.
    pub fn session_open(&self) -> ServeResult<u64> {
        self.session_open_model(None).map(|(id, _)| id)
    }

    /// Opens an incremental session against a named model (or the
    /// default alias / the one compiled model when `None`). The session
    /// pins the exact version it opened against — that version can be
    /// swapped away, unloaded, or evicted from the registry, yet the
    /// session keeps answering on it until closed or expired. Returns
    /// the session id plus the pinned `name@vN` tag when a model was
    /// named.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when the spec does not resolve or the
    /// version is being unloaded (the unload check is atomic with the
    /// table insert, so a racing `model-unload` yields a deterministic
    /// `model_unloading` error, never a half-dropped session);
    /// [`ServeError::SessionLimit`] when the table is full;
    /// [`ServeError::Engine`] if the base calibration fails.
    pub fn session_open_model(&self, model: Option<&str>) -> ServeResult<(u64, Option<String>)> {
        match self.resolve_handle(model)? {
            Some(handle) => self.open_with_handle(handle, model.is_some()),
            None => {
                let base = self.session_base_snapshot()?;
                self.inner
                    .sessions
                    .open(self.inner.shards.len(), |_| {
                        Ok::<_, ServeError>((
                            IncrementalSession::from_snapshot(Arc::clone(&self.inner.model), &base),
                            None,
                        ))
                    })
                    .map(|(id, _)| (id, None))
                    .map_err(|e| match e {
                        OpenError::Full => ServeError::SessionLimit,
                        OpenError::Make(e) => e,
                    })
            }
        }
    }

    /// Opens a session pinning `handle`. Split out so the unload-race
    /// test can inject a handle resolved *before* a `model-unload`.
    fn open_with_handle(
        &self,
        handle: Arc<ModelHandle>,
        named: bool,
    ) -> ServeResult<(u64, Option<String>)> {
        // Per-version base calibration, computed once per handle (the
        // same clone-the-snapshot trick as the single-model path).
        let base = handle.session_base_with(|| {
            let mut boot = IncrementalSession::new(Arc::clone(handle.model()));
            boot.calibrate_full(&self.inner.shards[0].state)
                .map_err(ServeError::Engine)?;
            Ok::<_, ServeError>(Arc::new(
                boot.snapshot().expect("no pending deltas after calibrate"),
            ))
        })?;
        let tag = handle.tag();
        self.inner
            .sessions
            .open(self.inner.shards.len(), |_| {
                // Re-checked under the table lock, atomically with the
                // insert: once `model-unload` marks the version, no new
                // session can pin it — and a session inserted before
                // the mark holds a strong `Arc` the unload observes.
                if handle.is_unloading() {
                    return Err(ServeError::Registry(RegistryError::Unloading(handle.tag())));
                }
                Ok((
                    IncrementalSession::from_snapshot(Arc::clone(handle.model()), &base),
                    Some(Arc::clone(&handle)),
                ))
            })
            .map(|(id, _)| (id, named.then_some(tag)))
            .map_err(|e| match e {
                OpenError::Full => ServeError::SessionLimit,
                OpenError::Make(e) => e,
            })
    }

    /// Sets hard evidence on an open session (a pending delta; the
    /// propagation happens on the next `session_query`).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`]; [`ServeError::Engine`] on an
    /// unknown variable or out-of-range state.
    pub fn session_set(&self, id: u64, var: VarId, state: usize) -> ServeResult<()> {
        let (_, session, _) = self.session_entry(id)?;
        let result = session.lock().observe(var, state);
        result.map_err(ServeError::Engine)
    }

    /// Retracts evidence from an open session, returning the state that
    /// was observed (`None` when the variable was unobserved).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn session_retract(&self, id: u64, var: VarId) -> ServeResult<Option<usize>> {
        let (_, session, _) = self.session_entry(id)?;
        let removed = session.lock().retract(var);
        Ok(removed)
    }

    /// Answers a posterior query on an open session, bringing exactly
    /// the dirty slice of the tree up to date on the session's pinned
    /// shard. Also returns how the query was answered (cached /
    /// incremental / full).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`]; [`ServeError::Engine`] for
    /// propagation errors (unknown target, impossible evidence, …).
    pub fn session_query(
        &self,
        id: u64,
        target: VarId,
    ) -> ServeResult<(PotentialTable, QueryMode)> {
        let (shard, session, handle) = self.session_entry(id)?;
        let state = &self.inner.shards[shard].state;
        let result = session.lock().query(state, target);
        if result.is_ok() {
            if let Some(h) = &handle {
                h.record_served();
            }
        }
        result.map_err(ServeError::Engine)
    }

    /// Closes an open session, releasing its resident tables.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] when the id is not open.
    pub fn session_close(&self, id: u64) -> ServeResult<()> {
        if self.inner.sessions.close(id) {
            Ok(())
        } else {
            Err(ServeError::UnknownSession(id))
        }
    }

    #[allow(clippy::type_complexity)]
    fn session_entry(
        &self,
        id: u64,
    ) -> ServeResult<(
        usize,
        Arc<parking_lot::Mutex<IncrementalSession>>,
        Option<Arc<ModelHandle>>,
    )> {
        self.inner
            .sessions
            .get(id)
            .ok_or(ServeError::UnknownSession(id))
    }

    /// The name catalog of the model a live session pinned, if it
    /// pinned one (registry mode). The front-end interprets and formats
    /// session commands against these names rather than the default
    /// model's — the pinned model's variables can differ arbitrarily.
    pub(crate) fn session_names(
        &self,
        id: u64,
    ) -> Option<Arc<dyn evprop_registry::ModelNames + Send + Sync>> {
        let (_, _, handle) = self.inner.sessions.get(id)?;
        handle.map(|h| Arc::clone(h.names()))
    }

    /// The shared empty-evidence calibration, computed on first use on
    /// shard 0's pool.
    fn session_base_snapshot(&self) -> ServeResult<Arc<CalibratedState>> {
        let mut base = self.inner.session_base.lock();
        if let Some(b) = base.as_ref() {
            return Ok(Arc::clone(b));
        }
        let mut boot = IncrementalSession::new(Arc::clone(&self.inner.model));
        boot.calibrate_full(&self.inner.shards[0].state)
            .map_err(ServeError::Engine)?;
        let snapshot = Arc::new(boot.snapshot().expect("no pending deltas after calibrate"));
        *base = Some(Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// Stops admitting new queries without waiting: later submissions
    /// fail with [`ServeError::ShuttingDown`] while the dispatchers
    /// keep draining everything already admitted. The first step of a
    /// graceful drain; [`ShardedRuntime::drain`] adds the bounded wait.
    pub fn close_admission(&self) {
        self.inner.queue.close();
    }

    /// Graceful drain: stop admitting, answer every query already
    /// admitted, close all open sessions, and join the dispatcher
    /// threads — bounded by `timeout`. Returns `true` on a clean drain;
    /// `false` when the timeout fired first (sessions are still closed
    /// and admission stays shut, but dispatcher threads may still be
    /// finishing — the caller decides whether to force-exit).
    pub fn drain(&self, timeout: Duration) -> bool {
        self.inner.queue.close();
        let deadline = Instant::now() + timeout;
        // `JoinHandle` has no timed join; poll `is_finished` instead.
        // The dispatchers exit as soon as the closed queue runs dry.
        loop {
            if self.dispatchers.lock().iter().all(|h| h.is_finished()) {
                break;
            }
            if Instant::now() >= deadline {
                self.inner.sessions.close_all();
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let handles: Vec<_> = self.dispatchers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.inner.sessions.close_all();
        true
    }

    /// Marks `n` upcoming pool jobs on `shard` to kill their worker
    /// thread outside the panic guard — exercising the supervision/
    /// respawn path from tests and benchmarks without the `chaos`
    /// feature.
    #[doc(hidden)]
    pub fn inject_worker_deaths(&self, shard: usize, n: usize) {
        self.inner.shards[shard].state.inject_worker_deaths(n);
    }

    /// Stops admission, answers everything already queued, and joins
    /// the dispatcher threads. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let handles: Vec<_> = self.dispatchers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shard dispatcher loop: pop → drain a micro-batch → answer on one
/// arena → fulfill tickets. Exits when the queue is closed and empty.
///
/// Jobs carry their resolved model, so one micro-batch may interleave
/// models: the dispatcher keeps the arena checked out while consecutive
/// jobs share a model and swaps it (recycle + checkout) on a change.
/// The shard's arena cache matches recycled arenas by graph, so a small
/// working set of interleaved models serves allocation-free once warm.
fn dispatcher(inner: &Inner, idx: usize) {
    let shard = &inner.shards[idx];
    let mut batch: Vec<Job> = Vec::with_capacity(inner.max_batch);
    while let Some(first) = inner.queue.pop() {
        batch.push(first);
        if inner.max_batch > 1 {
            inner.queue.drain_into(&mut batch, inner.max_batch - 1);
        }
        #[cfg(feature = "chaos")]
        if let Some(stall) = evprop_sched::chaos::queue_stall() {
            std::thread::sleep(stall);
        }
        let round = Instant::now();
        let mut current: Option<(Arc<CompiledModel>, TableArena)> = None;
        for job in batch.drain(..) {
            // Deadline shed: a job whose deadline expired while queued
            // never starts a propagation — the deterministic outcome
            // for work the client has already given up on.
            if let Some(dl) = job.deadline {
                let now = Instant::now();
                if now >= dl {
                    let queue = now.duration_since(job.enqueued);
                    let timing = QueryTiming {
                        queue,
                        exec: Duration::ZERO,
                        shard: idx,
                    };
                    shard.metrics.served.incr();
                    shard.metrics.errors.incr();
                    shard.metrics.shed.incr();
                    shard.metrics.latency.record(queue);
                    inner.remember(QuerySummary {
                        target: job.query.target,
                        ok: false,
                        timing,
                    });
                    job.slot
                        .fulfill(Err(ServeError::DeadlineExceeded { queue }), timing);
                    continue;
                }
            }
            let model = job.handle.as_ref().map_or(&inner.model, |h| h.model());
            let stale = current
                .as_ref()
                .is_none_or(|(cur, _)| !Arc::ptr_eq(cur, model));
            if stale {
                if let Some((_, arena)) = current.take() {
                    shard.state.recycle(arena);
                }
                let arena = shard
                    .state
                    .checkout(model.graph(), model.junction_tree().potentials());
                current = Some((Arc::clone(model), arena));
            }
            let (model, arena) = current.as_mut().expect("arena checked out above");
            // Deadline-armed jobs run under a cancel token the workers
            // consult at task boundaries; deadline-free jobs take the
            // exact pre-existing path (no token, no clock reads).
            let cancel = job.deadline.map(CancelToken::with_deadline);
            let exec_start = Instant::now();
            let result = shard
                .state
                .posterior_on_cancellable(
                    model.junction_tree(),
                    model.graph(),
                    arena,
                    job.query.target,
                    &job.query.evidence,
                    cancel.as_ref(),
                )
                .map_err(|e| match e {
                    EngineError::Cancelled => {
                        shard.metrics.cancelled.incr();
                        ServeError::DeadlineExceeded {
                            queue: exec_start.duration_since(job.enqueued),
                        }
                    }
                    other => {
                        if matches!(other, EngineError::WorkerPanicked(_)) {
                            shard.metrics.panics.incr();
                        }
                        ServeError::Engine(other)
                    }
                });
            let timing = QueryTiming {
                queue: exec_start.duration_since(job.enqueued),
                exec: exec_start.elapsed(),
                shard: idx,
            };
            shard.metrics.served.incr();
            if result.is_err() {
                shard.metrics.errors.incr();
            }
            if let Some(h) = &job.handle {
                h.record_served();
            }
            shard.metrics.latency.record(job.enqueued.elapsed());
            inner.remember(QuerySummary {
                target: job.query.target,
                ok: result.is_ok(),
                timing,
            });
            job.slot.fulfill(result, timing);
        }
        if let Some((_, arena)) = current.take() {
            shard.state.recycle(arena);
        }
        shard.metrics.batches.incr();
        shard
            .metrics
            .busy_nanos
            .add(u64::try_from(round.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_bayesnet::networks;
    use evprop_core::SequentialEngine;
    use evprop_potential::{EvidenceSet, VarId};

    use evprop_incremental::QueryMode;

    fn asia_runtime(config: RuntimeConfig) -> ShardedRuntime {
        let session = InferenceSession::from_network(&networks::asia()).unwrap();
        ShardedRuntime::new(session, config)
    }

    #[test]
    fn answers_match_sequential_bitwise() {
        let rt = asia_runtime(RuntimeConfig::new(2, 1).without_partitioning());
        let session = InferenceSession::from_network(&networks::asia()).unwrap();
        for state in 0..2 {
            let mut ev = EvidenceSet::new();
            ev.observe(VarId(7), state);
            let want_all = session.propagate(&SequentialEngine, &ev).unwrap();
            for v in 0..8u32 {
                let got = rt.query(Query::new(VarId(v), ev.clone())).unwrap();
                let want = want_all.marginal(VarId(v)).unwrap();
                assert_eq!(got.data(), want.data(), "V{v} state {state}");
            }
        }
    }

    #[test]
    fn tickets_resolve_out_of_order_submissions() {
        let rt = asia_runtime(RuntimeConfig::new(2, 1));
        let tickets: Vec<(u32, Ticket)> = (0..6u32)
            .map(|i| {
                let mut ev = EvidenceSet::new();
                ev.observe(VarId(7), (i % 2) as usize);
                (i, rt.submit(Query::new(VarId(i % 3), ev)).unwrap())
            })
            .collect();
        for (i, t) in tickets {
            let m = t.wait().unwrap_or_else(|e| panic!("query {i}: {e}"));
            assert!((m.sum() - 1.0).abs() < 1e-9);
        }
        let stats = rt.stats();
        assert_eq!(stats.served, 6);
        assert_eq!(stats.errors, 0);
        assert!(stats.queue_high_water <= rt.config().queue_depth);
    }

    #[test]
    fn per_query_errors_do_not_poison_the_batch() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1));
        let bad = rt
            .submit(Query::new(VarId(99), EvidenceSet::new()))
            .unwrap();
        let good = rt.submit(Query::new(VarId(3), EvidenceSet::new())).unwrap();
        assert!(matches!(
            bad.wait(),
            Err(ServeError::Engine(EngineError::VariableNotInTree(_)))
        ));
        assert!(good.wait().is_ok());
        let stats = rt.stats();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn shutdown_rejects_new_work_but_answers_queued() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1));
        let t = rt.submit(Query::new(VarId(2), EvidenceSet::new())).unwrap();
        rt.shutdown();
        assert!(t.wait().is_ok());
        assert!(matches!(
            rt.submit(Query::new(VarId(2), EvidenceSet::new())),
            Err(ServeError::ShuttingDown)
        ));
        assert!(matches!(
            rt.try_submit(Query::new(VarId(2), EvidenceSet::new())),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn steady_state_allocates_no_new_arenas() {
        let rt = asia_runtime(RuntimeConfig::new(2, 1).without_partitioning());
        // Warm every shard: more queries than shards × batch.
        for _ in 0..40 {
            rt.query(Query::new(VarId(3), EvidenceSet::new())).unwrap();
        }
        let warm: u64 = rt.stats().shards.iter().map(|s| s.arenas_allocated).sum();
        for _ in 0..40 {
            rt.query(Query::new(VarId(3), EvidenceSet::new())).unwrap();
        }
        let after: u64 = rt.stats().shards.iter().map(|s| s.arenas_allocated).sum();
        assert_eq!(warm, after, "warm serving must not allocate arenas");
        // Each shard allocated at most one arena for this single graph.
        assert!(after <= 2, "got {after}");
    }

    #[test]
    fn query_timed_reports_sane_breakdown() {
        let rt = asia_runtime(RuntimeConfig::new(2, 1));
        let (m, t) = rt
            .query_timed(Query::new(VarId(3), EvidenceSet::new()))
            .unwrap();
        assert!((m.sum() - 1.0).abs() < 1e-9);
        assert!(t.shard < 2);
        assert!(t.exec > Duration::ZERO);
        assert!(t.queue < Duration::from_secs(60));
        // Errors still resolve the ticket with timing attached.
        let (bad, t) = rt
            .submit(Query::new(VarId(99), EvidenceSet::new()))
            .unwrap()
            .wait_timed();
        assert!(bad.is_err());
        assert!(t.shard < 2);
    }

    #[test]
    fn recent_ring_keeps_newest_in_order() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1));
        for i in 0..(RECENT_CAP + 5) {
            rt.query(Query::new(VarId((i % 3) as u32), EvidenceSet::new()))
                .unwrap();
        }
        let _ = rt
            .submit(Query::new(VarId(99), EvidenceSet::new()))
            .unwrap()
            .wait();
        let recent = rt.recent();
        assert_eq!(recent.len(), RECENT_CAP, "ring is capped");
        // Newest entry is the failing query; everything else succeeded.
        let last = recent.last().unwrap();
        assert_eq!(last.target, VarId(99));
        assert!(!last.ok);
        assert!(recent[..RECENT_CAP - 1].iter().all(|q| q.ok));
    }

    #[test]
    fn sessions_answer_incrementally_and_match_stateless() {
        let rt = asia_runtime(RuntimeConfig::new(2, 1).without_partitioning());
        let session = InferenceSession::from_network(&networks::asia()).unwrap();
        let id = rt.session_open().unwrap();

        // The open cloned the shared empty-evidence calibration, so the
        // first query needs no propagation at all.
        let (m0, mode0) = rt.session_query(id, VarId(3)).unwrap();
        assert_eq!(mode0, QueryMode::Cached);
        let want0 = session
            .posterior(&SequentialEngine, VarId(3), &EvidenceSet::new())
            .unwrap();
        for (g, w) in m0.data().iter().zip(want0.data()) {
            assert!(
                (g - w).abs() < 1e-12,
                "{:?} vs {:?}",
                m0.data(),
                want0.data()
            );
        }

        // An additive delta runs the dirty slice, not a full repropagation,
        // and still matches the stateless path.
        rt.session_set(id, VarId(7), 1).unwrap();
        let (m1, mode1) = rt.session_query(id, VarId(3)).unwrap();
        assert!(
            matches!(mode1, QueryMode::Incremental { .. }),
            "got {mode1:?}"
        );
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1);
        let want1 = session.posterior(&SequentialEngine, VarId(3), &ev).unwrap();
        for (g, w) in m1.data().iter().zip(want1.data()) {
            assert!(
                (g - w).abs() < 1e-9,
                "{:?} vs {:?}",
                m1.data(),
                want1.data()
            );
        }

        // Retraction round-trips and the posterior returns to the prior.
        assert_eq!(rt.session_retract(id, VarId(7)).unwrap(), Some(1));
        assert_eq!(rt.session_retract(id, VarId(7)).unwrap(), None);
        let (m2, _) = rt.session_query(id, VarId(3)).unwrap();
        for (g, w) in m2.data().iter().zip(want0.data()) {
            assert!((g - w).abs() < 1e-9);
        }

        rt.session_close(id).unwrap();
        assert!(matches!(
            rt.session_query(id, VarId(3)),
            Err(ServeError::UnknownSession(_))
        ));
    }

    #[test]
    fn session_table_is_bounded_and_ids_are_checked() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1).with_session_capacity(1));
        assert!(matches!(
            rt.session_set(42, VarId(0), 0),
            Err(ServeError::UnknownSession(42))
        ));
        let id = rt.session_open().unwrap();
        assert!(matches!(rt.session_open(), Err(ServeError::SessionLimit)));
        rt.session_close(id).unwrap();
        assert!(matches!(
            rt.session_close(id),
            Err(ServeError::UnknownSession(_))
        ));
        rt.session_open().unwrap();
        // Per-session engine errors surface without killing the session.
        let id2 = 2;
        assert!(matches!(
            rt.session_set(id2, VarId(99), 0),
            Err(ServeError::Engine(EngineError::VariableNotInTree(_)))
        ));
        assert!(rt.session_query(id2, VarId(3)).is_ok());
    }

    #[test]
    fn idle_sessions_expire_and_stats_appear_on_first_use() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1).with_session_ttl(Duration::from_millis(20)));
        assert!(rt.stats().sessions.is_none(), "absent before any open");
        let id = rt.session_open().unwrap();
        rt.session_query(id, VarId(3)).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert!(matches!(
            rt.session_query(id, VarId(3)),
            Err(ServeError::UnknownSession(_))
        ));
        let stats = rt.stats().sessions.expect("present after first open");
        assert_eq!(stats.opened, 1);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.open, 0);
        assert_eq!(stats.propagation.queries, 1, "retired counters survive");
    }

    fn registry_with(nets: &[(&str, &evprop_bayesnet::BayesianNetwork)]) -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        for (name, net) in nets {
            let session = InferenceSession::from_network(net).unwrap();
            registry
                .install(
                    name,
                    Arc::clone(session.model()),
                    Arc::new(evprop_registry::NumericNames::of(net)),
                )
                .unwrap();
        }
        registry
    }

    #[test]
    fn registry_mode_answers_match_and_tags_named_queries() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let registry = registry_with(&[("asia", &net)]);
        let rt = ShardedRuntime::with_registry(
            Arc::clone(&registry),
            "asia",
            RuntimeConfig::new(1, 1).without_partitioning(),
        )
        .unwrap();
        let want = session
            .posterior(&SequentialEngine, VarId(3), &EvidenceSet::new())
            .unwrap();
        // Default-alias submission: untagged, bitwise-identical answer.
        let t = rt.submit(Query::new(VarId(3), EvidenceSet::new())).unwrap();
        assert_eq!(t.model_tag(), None);
        assert_eq!(t.wait().unwrap().data(), want.data());
        // Named submission pins and reports the exact version.
        let t = rt
            .submit_model(Query::new(VarId(3), EvidenceSet::new()), Some("asia@v1"))
            .unwrap();
        assert_eq!(t.model_tag(), Some("asia@v1"));
        assert_eq!(t.wait().unwrap().data(), want.data());
        // Unknown specs fail at submit, before touching the queue.
        assert!(matches!(
            rt.submit_model(Query::new(VarId(3), EvidenceSet::new()), Some("nope")),
            Err(ServeError::Registry(RegistryError::UnknownModel(_)))
        ));
        let reg = rt.stats().registry.expect("registry stats present");
        assert_eq!(reg.loads, 1);
        assert_eq!(reg.served, 2, "both answered jobs carried a handle");
    }

    #[test]
    fn interleaved_models_each_answer_with_their_own_tables() {
        let asia = networks::asia();
        let student = networks::student();
        let registry = registry_with(&[("asia", &asia), ("student", &student)]);
        let rt = ShardedRuntime::with_registry(
            Arc::clone(&registry),
            "asia",
            RuntimeConfig::new(1, 1)
                .without_partitioning()
                .with_max_batch(4),
        )
        .unwrap();
        let want_asia = InferenceSession::from_network(&asia)
            .unwrap()
            .posterior(&SequentialEngine, VarId(2), &EvidenceSet::new())
            .unwrap();
        let want_student = InferenceSession::from_network(&student)
            .unwrap()
            .posterior(&SequentialEngine, VarId(2), &EvidenceSet::new())
            .unwrap();
        // Interleave the two models within micro-batches; every answer
        // must come from the right model's tables, bit-identical.
        let tickets: Vec<Ticket> = (0..12)
            .map(|i| {
                let spec = if i % 2 == 0 { "asia" } else { "student" };
                rt.submit_model(Query::new(VarId(2), EvidenceSet::new()), Some(spec))
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let want = if i % 2 == 0 {
                &want_asia
            } else {
                &want_student
            };
            assert_eq!(t.wait().unwrap().data(), want.data(), "query {i}");
        }
        // Both graphs fit the shard's arena cache: a second interleaved
        // round allocates nothing new.
        let warm: u64 = rt.stats().shards.iter().map(|s| s.arenas_allocated).sum();
        for i in 0..12 {
            let spec = if i % 2 == 0 { "asia" } else { "student" };
            rt.submit_model(Query::new(VarId(2), EvidenceSet::new()), Some(spec))
                .unwrap()
                .wait()
                .unwrap();
        }
        let after: u64 = rt.stats().shards.iter().map(|s| s.arenas_allocated).sum();
        assert_eq!(warm, after, "warm interleaved serving must not allocate");
    }

    #[test]
    fn session_open_racing_unload_is_rejected_deterministically() {
        let net = networks::asia();
        let registry = registry_with(&[("asia", &net)]);
        let rt =
            ShardedRuntime::with_registry(Arc::clone(&registry), "asia", RuntimeConfig::new(1, 1))
                .unwrap();
        // A connection resolved the handle, then an unload won the race:
        // the open's re-check under the table lock must reject it.
        let stale = registry.resolve("asia").unwrap();
        registry.unload("asia", None).unwrap();
        let err = rt.open_with_handle(stale, true).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Registry(RegistryError::Unloading(_))
        ));
        assert_eq!(err.to_string(), "model_unloading: asia@v1");
        // The normal path no longer resolves the name at all.
        assert!(matches!(
            rt.session_open_model(Some("asia")),
            Err(ServeError::Registry(RegistryError::UnknownModel(_)))
        ));
    }

    #[test]
    fn open_sessions_pin_their_version_across_unload() {
        let net = networks::asia();
        let registry = registry_with(&[("asia", &net)]);
        let rt =
            ShardedRuntime::with_registry(Arc::clone(&registry), "asia", RuntimeConfig::new(1, 1))
                .unwrap();
        let (id, tag) = rt.session_open_model(Some("asia")).unwrap();
        assert_eq!(tag.as_deref(), Some("asia@v1"));
        registry.unload("asia", None).unwrap();
        // New work can no longer name the model...
        assert!(rt
            .submit_model(Query::new(VarId(3), EvidenceSet::new()), Some("asia"))
            .is_err());
        // ...but the open session still answers on its pinned version.
        rt.session_set(id, VarId(7), 1).unwrap();
        let (m, _) = rt.session_query(id, VarId(3)).unwrap();
        assert!((m.sum() - 1.0).abs() < 1e-9);
        rt.session_close(id).unwrap();
    }

    #[test]
    fn expired_deadline_sheds_deterministically() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1));
        let t = rt
            .submit_with_deadline(
                Query::new(VarId(3), EvidenceSet::new()),
                None,
                Some(Duration::ZERO),
            )
            .unwrap();
        match t.wait() {
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
        let stats = rt.stats();
        let faults = stats
            .faults
            .expect("faults object appears once a counter moves");
        assert_eq!(faults.shed, 1, "expired-at-dequeue is a shed, not a cancel");
        assert_eq!(faults.cancelled, 0);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.served, 1, "shed queries still count as answered");
    }

    #[test]
    fn far_deadline_answers_bit_identical_with_no_fault_counters() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1).without_partitioning());
        let session = InferenceSession::from_network(&networks::asia()).unwrap();
        let want = session
            .posterior(&SequentialEngine, VarId(3), &EvidenceSet::new())
            .unwrap();
        let got = rt
            .submit_with_deadline(
                Query::new(VarId(3), EvidenceSet::new()),
                None,
                Some(Duration::from_secs(3600)),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            got.data(),
            want.data(),
            "deadline-armed completion is bit-identical"
        );
        assert!(
            rt.stats().faults.is_none(),
            "nothing fired, no faults object"
        );
    }

    #[test]
    fn worker_death_fails_one_query_and_the_shard_recovers() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1).without_partitioning());
        rt.query(Query::new(VarId(3), EvidenceSet::new())).unwrap();
        rt.inject_worker_deaths(0, 1);
        let err = rt
            .query(Query::new(VarId(3), EvidenceSet::new()))
            .unwrap_err();
        assert!(
            matches!(err, ServeError::Engine(EngineError::WorkerPanicked(_))),
            "{err}"
        );
        // The respawned worker answers the next query, bit-identical.
        let session = InferenceSession::from_network(&networks::asia()).unwrap();
        let want = session
            .posterior(&SequentialEngine, VarId(3), &EvidenceSet::new())
            .unwrap();
        let got = rt.query(Query::new(VarId(3), EvidenceSet::new())).unwrap();
        assert_eq!(got.data(), want.data());
        let faults = rt.stats().faults.expect("panic and restart counted");
        assert_eq!(faults.panics, 1);
        assert_eq!(faults.restarts, 1);
    }

    #[test]
    fn drain_answers_admitted_work_and_reports_clean() {
        let rt = asia_runtime(RuntimeConfig::new(2, 1));
        let tickets: Vec<Ticket> = (0..8u32)
            .map(|i| {
                rt.submit(Query::new(VarId(i % 8), EvidenceSet::new()))
                    .unwrap()
            })
            .collect();
        assert!(rt.drain(Duration::from_secs(30)), "drain should finish");
        for t in tickets {
            assert!(t.wait().is_ok(), "every admitted query is answered");
        }
        assert!(matches!(
            rt.submit(Query::new(VarId(0), EvidenceSet::new())),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn drain_closes_open_sessions() {
        let rt = asia_runtime(RuntimeConfig::new(1, 1));
        let id = rt.session_open().unwrap();
        assert!(rt.drain(Duration::from_secs(30)));
        assert!(matches!(
            rt.session_query(id, VarId(3)),
            Err(ServeError::UnknownSession(_))
        ));
        let stats = rt.stats().sessions.unwrap();
        assert_eq!(stats.closed, 1);
        assert_eq!(stats.open, 0);
    }

    #[test]
    fn stats_are_consistent() {
        let rt = asia_runtime(RuntimeConfig::new(2, 1).with_max_batch(4));
        for i in 0..10u32 {
            rt.query(Query::new(VarId(i % 8), EvidenceSet::new()))
                .unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.served, 10);
        let per_shard: u64 = stats.shards.iter().map(|s| s.served).sum();
        assert_eq!(per_shard, 10);
        let batches: u64 = stats.shards.iter().map(|s| s.batches).sum();
        assert!((1..=10).contains(&batches));
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        assert!(stats.mean_latency > Duration::ZERO);
        for s in &stats.shards {
            assert!(s.busy + s.idle <= stats.uptime + Duration::from_millis(50));
        }
    }
}
