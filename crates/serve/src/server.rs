//! std-only TCP front-end: newline-delimited JSON over
//! thread-per-connection, answering on a shared [`ShardedRuntime`].
//!
//! One request line in, one response line out, in order, per
//! connection. Connections are independent — K clients drive K shards
//! concurrently. Shutdown closes the listener (via a wake-up connect)
//! and every tracked connection, so [`TcpServer::stop`] returns
//! promptly even with idle clients attached.

use crate::protocol::{
    format_error, format_model_list, format_model_loaded, format_model_swapped,
    format_model_unloaded, format_response, format_response_timed, format_session_ack,
    format_session_opened, format_session_response, format_stats, format_trace, parse_json,
    parse_request_value, request_model, request_session, with_model_tag, ModelNames, Request,
};
use crate::runtime::{ServeError, ShardedRuntime};
use evprop_registry::{ModelHandle, ModelRegistry, RegistryError};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Shared {
    runtime: Arc<ShardedRuntime>,
    names: Arc<dyn ModelNames + Send + Sync>,
    stop: AtomicBool,
    /// Clones of live connection streams, so `stop` can shut them down
    /// and unblock their handler threads mid-read.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running TCP front-end; dropping (or [`TcpServer::stop`]) shuts it
/// down.
pub struct TcpServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn bind(
        addr: &str,
        runtime: Arc<ShardedRuntime>,
        names: Arc<dyn ModelNames + Send + Sync>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            runtime,
            names,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("evprop-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(TcpServer {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects clients, and joins the accept
    /// thread. Idempotent; does **not** shut down the runtime (it may
    /// be shared).
    pub fn stop(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` by connecting once; the loop re-checks the
        // stop flag before handling the connection.
        let _ = TcpStream::connect(self.addr);
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push(clone);
        }
        let conn_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("evprop-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared));
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = answer_line(trimmed, shared);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

/// One request line → one response line (no trailing newline).
fn answer_line(line: &str, shared: &Shared) -> String {
    let v = match parse_json(line) {
        Ok(v) => v,
        Err(e) => return format_error(&e),
    };
    // The optional `"model"` field picks which registry version answers
    // — and whose variable names interpret — this request. Resolving it
    // *before* parsing is what lets two models with different variables
    // share one connection.
    let resolved: Option<Arc<ModelHandle>> = match request_model(&v) {
        Ok(None) => None,
        Ok(Some(spec)) => {
            let Some(registry) = shared.runtime.registry() else {
                return format_error(
                    &ServeError::Registry(RegistryError::UnknownModel(spec)).to_string(),
                );
            };
            match registry.resolve(&spec) {
                Ok(h) => Some(h),
                Err(e) => return format_error(&e.to_string()),
            }
        }
        Err(e) => return format_error(&e),
    };
    // Session-addressed commands speak the language of whatever model
    // their session pinned at open, so look that up before parsing.
    let session_names = request_session(&v).and_then(|id| shared.runtime.session_names(id));
    let names: &dyn ModelNames = match (&resolved, &session_names) {
        (Some(h), _) => h.names().as_ref(),
        (None, Some(n)) => n.as_ref(),
        (None, None) => shared.names.as_ref(),
    };
    match parse_request_value(&v, names) {
        Ok(Request::Stats) => format_stats(&shared.runtime.stats()),
        Ok(Request::Trace) => format_trace(shared.names.as_ref(), &shared.runtime.recent()),
        Ok(Request::Query { query, timing }) => {
            let target = query.target;
            // Re-resolve by exact tag at submit: the ticket then pins —
            // and the response names — the exact answering version.
            let spec = resolved.as_ref().map(|h| h.tag());
            let ticket = match shared.runtime.submit_model(query, spec.as_deref()) {
                Ok(t) => t,
                Err(e) => return format_error(&e.to_string()),
            };
            let tag = ticket.model_tag().map(str::to_string);
            let response = if timing {
                match ticket.wait_timed() {
                    (Ok(marginal), t) => format_response_timed(names, target, &marginal, &t),
                    (Err(e), _) => return format_error(&e.to_string()),
                }
            } else {
                match ticket.wait() {
                    Ok(marginal) => format_response(names, target, &marginal),
                    Err(e) => return format_error(&e.to_string()),
                }
            };
            match tag {
                Some(tag) => with_model_tag(response, &tag),
                None => response,
            }
        }
        Ok(Request::SessionOpen) => {
            let spec = resolved.as_ref().map(|h| h.tag());
            match shared.runtime.session_open_model(spec.as_deref()) {
                Ok((id, Some(tag))) => with_model_tag(format_session_opened(id), &tag),
                Ok((id, None)) => format_session_opened(id),
                Err(e) => format_error(&e.to_string()),
            }
        }
        Ok(Request::SessionSet {
            session,
            var,
            state,
        }) => match shared.runtime.session_set(session, var, state) {
            Ok(()) => format_session_ack(None),
            Err(e) => format_error(&e.to_string()),
        },
        Ok(Request::SessionRetract { session, var }) => {
            match shared.runtime.session_retract(session, var) {
                Ok(removed) => {
                    format_session_ack(removed.map(|s| names.state_name(var, s)).as_deref())
                }
                Err(e) => format_error(&e.to_string()),
            }
        }
        Ok(Request::SessionQuery { session, target }) => {
            match shared.runtime.session_query(session, target) {
                Ok((marginal, mode)) => format_session_response(names, target, &marginal, &mode),
                Err(e) => format_error(&e.to_string()),
            }
        }
        Ok(Request::SessionClose { session }) => match shared.runtime.session_close(session) {
            Ok(()) => format_session_ack(None),
            Err(e) => format_error(&e.to_string()),
        },
        Ok(Request::ModelLoad { path, name }) => answer_model_load(shared, &path, &name),
        Ok(Request::ModelUnload { name, version }) => match registry_of(shared) {
            Ok(registry) => match registry.unload(&name, version) {
                Ok(tags) => format_model_unloaded(&tags),
                Err(e) => format_error(&e.to_string()),
            },
            Err(resp) => resp,
        },
        Ok(Request::ModelList) => match registry_of(shared) {
            Ok(registry) => format_model_list(&registry.list()),
            Err(resp) => resp,
        },
        Ok(Request::ModelSwap { name, version }) => match registry_of(shared) {
            Ok(registry) => match registry.swap(&name, version) {
                Ok(handle) => format_model_swapped(&handle.tag()),
                Err(e) => format_error(&e.to_string()),
            },
            Err(resp) => resp,
        },
        Err(msg) => format_error(&msg),
    }
}

/// The runtime's registry, or a ready-made error response for servers
/// booted without one.
fn registry_of(shared: &Shared) -> Result<&Arc<ModelRegistry>, String> {
    shared
        .runtime
        .registry()
        .ok_or_else(|| format_error("server has no model registry: boot with --model to enable"))
}

/// Handles `model-load`: parse + compile + warm up the BIF file on the
/// connection thread (the dispatcher threads keep serving throughout),
/// then install it as the next version of `name` and flip the alias.
fn answer_model_load(shared: &Shared, path: &str, name: &str) -> String {
    let registry = match registry_of(shared) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => return format_error(&format!("cannot read {path}: {e}")),
    };
    let bif = match evprop_bayesnet::bif::parse(&src) {
        Ok(bif) => bif,
        Err(e) => return format_error(&format!("cannot parse {path}: {e}")),
    };
    let session = match evprop_core::InferenceSession::from_network(&bif.network) {
        Ok(s) => s,
        Err(e) => return format_error(&format!("cannot compile {path}: {e}")),
    };
    let model = Arc::clone(session.model());
    match registry.install(name, model, Arc::new(bif)) {
        Ok(handle) => format_model_loaded(&handle.tag(), handle.resident_bytes()),
        Err(e) => format_error(&e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NumericNames;
    use crate::runtime::RuntimeConfig;
    use evprop_bayesnet::networks;
    use evprop_core::{InferenceSession, SequentialEngine};
    use evprop_potential::{EvidenceSet, VarId};

    fn boot() -> (TcpServer, SocketAddr) {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let runtime = Arc::new(ShardedRuntime::new(
            session,
            RuntimeConfig::new(2, 1).without_partitioning(),
        ));
        let names = Arc::new(NumericNames::of(&net));
        let server = TcpServer::bind("127.0.0.1:0", runtime, names).unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    fn roundtrip(stream: &TcpStream, request: &str) -> String {
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        writeln!(w, "{request}").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_queries_and_errors_over_tcp() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();

        let response = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        // The answer must match the sequential engine bit-for-bit.
        let session = InferenceSession::from_network(&networks::asia()).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1);
        let want = session.posterior(&SequentialEngine, VarId(3), &ev).unwrap();
        let expected = format_response(&NumericNames::of(&networks::asia()), VarId(3), &want);
        assert_eq!(response, expected);

        let err = roundtrip(&stream, r#"{"target": "bogus"}"#);
        assert!(err.contains("\"error\""), "got: {err}");

        // The connection survives the error and keeps answering.
        let again = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        assert_eq!(again, expected);

        server.stop();
    }

    #[test]
    fn concurrent_connections_are_isolated() {
        let (mut server, addr) = boot();
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let req = format!(r#"{{"target": "v{}", "evidence": {{"v7": 1}}}}"#, i % 8);
                    let resp = roundtrip(&stream, &req);
                    assert!(resp.contains("\"marginal\""), "got: {resp}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn timing_fields_are_opt_in() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();

        // Default: byte-identical to the plain response (golden-stable).
        let plain = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        assert!(!plain.contains("queue_us"), "got: {plain}");
        assert!(!plain.contains("exec_us"), "got: {plain}");

        // Opted in: same answer plus a sane timing pair.
        let timed = roundtrip(
            &stream,
            r#"{"target": "v3", "evidence": {"v7": 1}, "timing": true}"#,
        );
        use crate::protocol::{parse_json, Json};
        let v = parse_json(&timed).unwrap();
        let plain_v = parse_json(&plain).unwrap();
        assert_eq!(v.get("marginal"), plain_v.get("marginal"));
        let Some(Json::Num(queue)) = v.get("queue_us") else {
            panic!("missing queue_us: {timed}");
        };
        let Some(Json::Num(exec)) = v.get("exec_us") else {
            panic!("missing exec_us: {timed}");
        };
        assert!(*queue >= 0.0 && *queue < 60_000_000.0, "queue_us {queue}");
        assert!(*exec >= 0.0 && *exec < 60_000_000.0, "exec_us {exec}");
        assert!(matches!(v.get("shard"), Some(Json::Num(_))), "{timed}");
        server.stop();
    }

    #[test]
    fn stats_and_trace_commands() {
        use crate::protocol::{parse_json, Json};
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        for _ in 0..3 {
            roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        }

        let stats_line = roundtrip(&stream, r#"{"cmd": "stats"}"#);
        let v = parse_json(&stats_line).unwrap();
        let stats = v.get("stats").expect("stats object");
        assert_eq!(stats.get("served"), Some(&Json::Num(3.0)));
        assert_eq!(stats.get("errors"), Some(&Json::Num(0.0)));
        let Some(Json::Arr(shards)) = stats.get("shards") else {
            panic!("missing shards: {stats_line}");
        };
        assert_eq!(shards.len(), 2);

        let trace_line = roundtrip(&stream, r#"{"cmd": "trace"}"#);
        let v = parse_json(&trace_line).unwrap();
        let Some(Json::Arr(recent)) = v.get("trace").and_then(|t| t.get("recent")) else {
            panic!("missing trace.recent: {trace_line}");
        };
        assert_eq!(recent.len(), 3);
        for q in recent {
            assert_eq!(q.get("target"), Some(&Json::Str("v3".into())));
            assert_eq!(q.get("ok"), Some(&Json::Bool(true)));
            assert!(matches!(q.get("exec_us"), Some(Json::Num(_))));
        }

        let err = roundtrip(&stream, r#"{"cmd": "nonsense"}"#);
        assert!(err.contains("\"error\""), "got: {err}");
        server.stop();
    }

    #[test]
    fn session_commands_over_tcp() {
        use crate::protocol::{parse_json, Json};
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();

        let opened = roundtrip(&stream, r#"{"cmd": "session-open"}"#);
        assert_eq!(opened, r#"{"session":1}"#);

        let ack = roundtrip(
            &stream,
            r#"{"cmd": "session-set", "session": 1, "var": "v7", "state": 1}"#,
        );
        assert_eq!(ack, r#"{"ok":true}"#);

        // The session answer matches the stateless path numerically and
        // reports how it was computed.
        let line = roundtrip(
            &stream,
            r#"{"cmd": "session-query", "session": 1, "target": "v3"}"#,
        );
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("mode"), Some(&Json::Str("incremental".into())));
        assert!(matches!(v.get("dirty"), Some(Json::Num(_))), "{line}");
        let stateless = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        let sv = parse_json(&stateless).unwrap();
        let (Some(Json::Arr(got)), Some(Json::Arr(want))) = (v.get("marginal"), sv.get("marginal"))
        else {
            panic!("missing marginal: {line} / {stateless}");
        };
        for (g, w) in got.iter().zip(want) {
            let (Json::Num(g), Json::Num(w)) = (g, w) else {
                panic!()
            };
            assert!((g - w).abs() < 1e-9, "{line} vs {stateless}");
        }

        let removed = roundtrip(
            &stream,
            r#"{"cmd": "session-retract", "session": 1, "var": "v7"}"#,
        );
        assert_eq!(removed, r#"{"ok":true,"removed":"1"}"#);
        let again = roundtrip(
            &stream,
            r#"{"cmd": "session-retract", "session": 1, "var": "v7"}"#,
        );
        assert_eq!(again, r#"{"ok":true}"#, "no-op retraction");

        assert_eq!(
            roundtrip(&stream, r#"{"cmd": "session-close", "session": 1}"#),
            r#"{"ok":true}"#
        );
        let gone = roundtrip(
            &stream,
            r#"{"cmd": "session-query", "session": 1, "target": "v3"}"#,
        );
        assert!(gone.contains("\"error\""), "got: {gone}");

        // Stats now carry the sessions object.
        let stats_line = roundtrip(&stream, r#"{"cmd": "stats"}"#);
        let v = parse_json(&stats_line).unwrap();
        let sessions = v
            .get("stats")
            .and_then(|s| s.get("sessions"))
            .expect("sessions object after first open");
        assert_eq!(sessions.get("opened"), Some(&Json::Num(1.0)));
        assert_eq!(sessions.get("closed"), Some(&Json::Num(1.0)));
        assert_eq!(sessions.get("open"), Some(&Json::Num(0.0)));
        server.stop();
    }

    fn boot_registry() -> (TcpServer, SocketAddr, Arc<ModelRegistry>) {
        let asia = networks::asia();
        let student = networks::student();
        let registry = Arc::new(ModelRegistry::new());
        for (name, net) in [("asia", &asia), ("student", &student)] {
            let session = InferenceSession::from_network(net).unwrap();
            registry
                .install(
                    name,
                    Arc::clone(session.model()),
                    Arc::new(NumericNames::of(net)),
                )
                .unwrap();
        }
        let runtime = Arc::new(
            ShardedRuntime::with_registry(
                Arc::clone(&registry),
                "asia",
                RuntimeConfig::new(1, 1).without_partitioning(),
            )
            .unwrap(),
        );
        let names = Arc::new(NumericNames::of(&asia));
        let server = TcpServer::bind("127.0.0.1:0", runtime, names).unwrap();
        let addr = server.local_addr();
        (server, addr, registry)
    }

    #[test]
    fn model_commands_and_named_queries_over_tcp() {
        use crate::protocol::{parse_json, with_model_tag, Json};
        let (mut server, addr, _registry) = boot_registry();
        let stream = TcpStream::connect(addr).unwrap();

        // A named query is answered by that model's tables and tagged
        // with the exact version — byte-for-byte predictable.
        let line = roundtrip(&stream, r#"{"model": "student", "target": "v2"}"#);
        let student = networks::student();
        let want = InferenceSession::from_network(&student)
            .unwrap()
            .posterior(&SequentialEngine, VarId(2), &EvidenceSet::new())
            .unwrap();
        let expected = with_model_tag(
            format_response(&NumericNames::of(&student), VarId(2), &want),
            "student@v1",
        );
        assert_eq!(line, expected);

        // Default-alias queries stay untagged (golden-stable output).
        let plain = roundtrip(&stream, r#"{"target": "v3"}"#);
        assert!(!plain.contains("\"model\""), "got: {plain}");

        // model-list names both models, sorted and deterministic.
        let list = roundtrip(&stream, r#"{"cmd": "model-list"}"#);
        assert!(
            list.contains(r#""name":"asia""#) && list.contains(r#""name":"student""#),
            "got: {list}"
        );

        // Load a third model over the wire, then query it by name.
        let path = std::env::temp_dir().join("evprop_model_cmd_test.bif");
        let bif_src = evprop_bayesnet::bif::write(&evprop_bayesnet::bif::with_generated_names(
            networks::sprinkler(),
            "sprinkler",
        ));
        std::fs::write(&path, bif_src).unwrap();
        let loaded = roundtrip(
            &stream,
            &format!(
                r#"{{"cmd": "model-load", "path": "{}", "name": "sprinkler"}}"#,
                path.display()
            ),
        );
        assert!(
            loaded.starts_with(r#"{"ok":true,"model":"sprinkler@v1","bytes":"#),
            "got: {loaded}"
        );
        let resp = roundtrip(&stream, r#"{"model": "sprinkler", "target": "v1"}"#);
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("model"), Some(&Json::Str("sprinkler@v1".into())));

        // A session pinned to a named model reports its version and
        // keeps answering after the model is unloaded.
        let opened = roundtrip(&stream, r#"{"cmd": "session-open", "model": "student"}"#);
        assert_eq!(opened, r#"{"session":1,"model":"student@v1"}"#);
        let unloaded = roundtrip(&stream, r#"{"cmd": "model-unload", "name": "student"}"#);
        assert_eq!(unloaded, r#"{"ok":true,"unloaded":["student@v1"]}"#);
        let sq = roundtrip(
            &stream,
            r#"{"cmd": "session-query", "session": 1, "target": "v2"}"#,
        );
        assert!(sq.contains("\"marginal\""), "got: {sq}");
        let gone = roundtrip(&stream, r#"{"model": "student", "target": "v2"}"#);
        assert!(gone.contains("\"error\""), "got: {gone}");

        // Swap acks with the exact retargeted version.
        let swapped = roundtrip(
            &stream,
            r#"{"cmd": "model-swap", "name": "asia", "version": 1}"#,
        );
        assert_eq!(swapped, r#"{"ok":true,"model":"asia@v1"}"#);

        server.stop();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn model_commands_without_registry_are_rejected() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(&stream, r#"{"cmd": "model-list"}"#);
        assert!(resp.contains("no model registry"), "got: {resp}");
        let resp = roundtrip(&stream, r#"{"model": "asia", "target": "v3"}"#);
        assert!(resp.contains("\"error\""), "got: {resp}");
        server.stop();
    }

    #[test]
    fn stop_unblocks_idle_clients() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        // An idle client is mid-read when the server stops.
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(stream);
            let mut line = String::new();
            r.read_line(&mut line) // unblocked by the shutdown
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.stop();
        let n = reader.join().unwrap().unwrap_or(0);
        assert_eq!(n, 0, "client read should see EOF");
    }
}
