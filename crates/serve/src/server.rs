//! std-only TCP front-end: newline-delimited JSON over
//! thread-per-connection, answering on a shared [`ShardedRuntime`].
//!
//! One request line in, one response line out, in order, per
//! connection. Connections are independent — K clients drive K shards
//! concurrently. Shutdown closes the listener (via a wake-up connect)
//! and every tracked connection, so [`TcpServer::stop`] returns
//! promptly even with idle clients attached.

use crate::protocol::{
    format_drain_ack, format_error, format_model_list, format_model_loaded, format_model_swapped,
    format_model_unloaded, format_response, format_response_timed, format_session_ack,
    format_session_opened, format_session_response, format_stats, format_trace, parse_json,
    parse_request_value, request_model, request_session, with_model_tag, ModelNames, Request,
};
use crate::runtime::{ServeError, ShardedRuntime};
use evprop_registry::{ModelHandle, ModelRegistry, RegistryError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Connection-hygiene knobs of the TCP front-end. The defaults match
/// the pre-options server (no timeouts, a generous line cap), so
/// [`TcpServer::bind`] behaves exactly as before; hardened deployments
/// tighten them via [`TcpServer::bind_with`].
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Maximum concurrently open connections; excess connects receive
    /// one `{"error": …}` line and are closed immediately.
    pub max_conns: usize,
    /// Maximum request-line length in bytes (newline included). An
    /// over-long line gets one error response and the connection is
    /// closed — a client streaming garbage can't balloon server memory.
    pub max_line_bytes: usize,
    /// Per-connection read timeout: a connection idle longer than this
    /// is reaped. `None` (the default) keeps idle clients forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout: a client that stops reading its
    /// responses is disconnected instead of blocking a handler thread.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_conns: 1024,
            max_line_bytes: 1 << 20,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

struct Shared {
    runtime: Arc<ShardedRuntime>,
    names: Arc<dyn ModelNames + Send + Sync>,
    stop: AtomicBool,
    options: ServerOptions,
    /// Clones of live connection streams keyed by connection id, so
    /// `stop` can shut them down and unblock their handler threads
    /// mid-read — and each handler removes its own entry on exit, so
    /// the table tracks *live* connections (the `max_conns` witness),
    /// not every connection ever accepted.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Set by the `drain` protocol command; [`TcpServer::wait_for_drain`]
    /// blocks on it.
    draining: Mutex<bool>,
    drain_cv: Condvar,
}

/// A running TCP front-end; dropping (or [`TcpServer::stop`]) shuts it
/// down.
pub struct TcpServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn bind(
        addr: &str,
        runtime: Arc<ShardedRuntime>,
        names: Arc<dyn ModelNames + Send + Sync>,
    ) -> std::io::Result<Self> {
        Self::bind_with(addr, runtime, names, ServerOptions::default())
    }

    /// [`TcpServer::bind`] with explicit connection-hygiene options.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn bind_with(
        addr: &str,
        runtime: Arc<ShardedRuntime>,
        names: Arc<dyn ModelNames + Send + Sync>,
        options: ServerOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            runtime,
            names,
            stop: AtomicBool::new(false),
            options,
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            draining: Mutex::new(false),
            drain_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("evprop-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(TcpServer {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until some client sends the `{"cmd": "drain"}` protocol
    /// command (or the server is stopped). By the time this returns,
    /// runtime admission is already closed; the caller finishes the
    /// shutdown with [`ShardedRuntime::drain`] and [`TcpServer::stop`].
    pub fn wait_for_drain(&self) {
        let mut draining = self.shared.draining.lock();
        while !*draining && !self.shared.stop.load(Ordering::SeqCst) {
            self.shared.drain_cv.wait(&mut draining);
        }
    }

    /// Stops accepting, disconnects clients, and joins the accept
    /// thread. Idempotent; does **not** shut down the runtime (it may
    /// be shared).
    pub fn stop(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Release wait_for_drain, then unblock `accept` by connecting
        // once; the loop re-checks the stop flag before handling the
        // connection.
        self.shared.drain_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = {
            let mut conns = shared.conns.lock();
            if conns.len() >= shared.options.max_conns {
                drop(conns);
                // Refuse politely with one error line so the client sees
                // *why*, instead of an unexplained reset.
                let mut w = BufWriter::new(stream);
                let _ = w
                    .write_all(format_error("connection limit reached: try again later").as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .and_then(|()| w.flush());
                continue; // dropping `w` closes the stream
            }
            let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                conns.insert(id, clone);
            }
            id
        };
        let conn_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("evprop-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.conns.lock().remove(&conn_id);
            });
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(shared.options.read_timeout);
    let _ = stream.set_write_timeout(shared.options.write_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let cap = shared.options.max_line_bytes;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // Read one line, but never buffer more than the cap: the `take`
        // bounds how much a newline-less client can make us hold.
        let n = match (&mut reader)
            .take(cap as u64 + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(0) => break, // EOF
            Ok(n) => n,
            // A read timeout means the connection idled past its
            // budget: reap it.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(_) => break,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if n > cap && !buf.ends_with(b"\n") {
            // The line is longer than the cap; answer once and hang up
            // (we cannot resynchronize on the next line boundary
            // without buffering the rest).
            let msg = format_error(&format!("request line exceeds {cap} bytes"));
            let _ = writer
                .write_all(msg.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            break;
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            break;
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        #[cfg(feature = "chaos")]
        if evprop_sched::chaos::should_drop_conn() {
            // Injected fault: tear the connection down mid-request, as a
            // crashing client or flaky network would.
            let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
            break;
        }
        let response = answer_line(trimmed, shared);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

/// One request line → one response line (no trailing newline).
fn answer_line(line: &str, shared: &Shared) -> String {
    let v = match parse_json(line) {
        Ok(v) => v,
        Err(e) => return format_error(&e),
    };
    // The optional `"model"` field picks which registry version answers
    // — and whose variable names interpret — this request. Resolving it
    // *before* parsing is what lets two models with different variables
    // share one connection.
    let resolved: Option<Arc<ModelHandle>> = match request_model(&v) {
        Ok(None) => None,
        Ok(Some(spec)) => {
            let Some(registry) = shared.runtime.registry() else {
                return format_error(
                    &ServeError::Registry(RegistryError::UnknownModel(spec)).to_string(),
                );
            };
            match registry.resolve(&spec) {
                Ok(h) => Some(h),
                Err(e) => return format_error(&e.to_string()),
            }
        }
        Err(e) => return format_error(&e),
    };
    // Session-addressed commands speak the language of whatever model
    // their session pinned at open, so look that up before parsing.
    let session_names = request_session(&v).and_then(|id| shared.runtime.session_names(id));
    let names: &dyn ModelNames = match (&resolved, &session_names) {
        (Some(h), _) => h.names().as_ref(),
        (None, Some(n)) => n.as_ref(),
        (None, None) => shared.names.as_ref(),
    };
    match parse_request_value(&v, names) {
        Ok(Request::Stats) => format_stats(&shared.runtime.stats()),
        Ok(Request::Trace) => format_trace(shared.names.as_ref(), &shared.runtime.recent()),
        Ok(Request::Query {
            query,
            timing,
            deadline,
        }) => {
            let target = query.target;
            // Re-resolve by exact tag at submit: the ticket then pins —
            // and the response names — the exact answering version.
            let spec = resolved.as_ref().map(|h| h.tag());
            let ticket = match shared
                .runtime
                .submit_with_deadline(query, spec.as_deref(), deadline)
            {
                Ok(t) => t,
                Err(e) => return format_error(&e.to_string()),
            };
            let tag = ticket.model_tag().map(str::to_string);
            let response = if timing {
                match ticket.wait_timed() {
                    (Ok(marginal), t) => format_response_timed(names, target, &marginal, &t),
                    (Err(e), _) => return format_error(&e.to_string()),
                }
            } else {
                match ticket.wait() {
                    Ok(marginal) => format_response(names, target, &marginal),
                    Err(e) => return format_error(&e.to_string()),
                }
            };
            match tag {
                Some(tag) => with_model_tag(response, &tag),
                None => response,
            }
        }
        Ok(Request::SessionOpen) => {
            let spec = resolved.as_ref().map(|h| h.tag());
            match shared.runtime.session_open_model(spec.as_deref()) {
                Ok((id, Some(tag))) => with_model_tag(format_session_opened(id), &tag),
                Ok((id, None)) => format_session_opened(id),
                Err(e) => format_error(&e.to_string()),
            }
        }
        Ok(Request::SessionSet {
            session,
            var,
            state,
        }) => match shared.runtime.session_set(session, var, state) {
            Ok(()) => format_session_ack(None),
            Err(e) => format_error(&e.to_string()),
        },
        Ok(Request::SessionRetract { session, var }) => {
            match shared.runtime.session_retract(session, var) {
                Ok(removed) => {
                    format_session_ack(removed.map(|s| names.state_name(var, s)).as_deref())
                }
                Err(e) => format_error(&e.to_string()),
            }
        }
        Ok(Request::SessionQuery { session, target }) => {
            match shared.runtime.session_query(session, target) {
                Ok((marginal, mode)) => format_session_response(names, target, &marginal, &mode),
                Err(e) => format_error(&e.to_string()),
            }
        }
        Ok(Request::SessionClose { session }) => match shared.runtime.session_close(session) {
            Ok(()) => format_session_ack(None),
            Err(e) => format_error(&e.to_string()),
        },
        Ok(Request::ModelLoad { path, name }) => answer_model_load(shared, &path, &name),
        Ok(Request::ModelUnload { name, version }) => match registry_of(shared) {
            Ok(registry) => match registry.unload(&name, version) {
                Ok(tags) => format_model_unloaded(&tags),
                Err(e) => format_error(&e.to_string()),
            },
            Err(resp) => resp,
        },
        Ok(Request::ModelList) => match registry_of(shared) {
            Ok(registry) => format_model_list(&registry.list()),
            Err(resp) => resp,
        },
        Ok(Request::ModelSwap { name, version }) => match registry_of(shared) {
            Ok(registry) => match registry.swap(&name, version) {
                Ok(handle) => format_model_swapped(&handle.tag()),
                Err(e) => format_error(&e.to_string()),
            },
            Err(resp) => resp,
        },
        Ok(Request::Drain) => {
            // Close admission immediately — every query already queued
            // still gets its answer — then wake whoever is parked in
            // `wait_for_drain` to run the bounded drain and exit.
            shared.runtime.close_admission();
            *shared.draining.lock() = true;
            shared.drain_cv.notify_all();
            format_drain_ack()
        }
        Err(msg) => format_error(&msg),
    }
}

/// The runtime's registry, or a ready-made error response for servers
/// booted without one.
fn registry_of(shared: &Shared) -> Result<&Arc<ModelRegistry>, String> {
    shared
        .runtime
        .registry()
        .ok_or_else(|| format_error("server has no model registry: boot with --model to enable"))
}

/// Handles `model-load`: parse + compile + warm up the BIF file on the
/// connection thread (the dispatcher threads keep serving throughout),
/// then install it as the next version of `name` and flip the alias.
fn answer_model_load(shared: &Shared, path: &str, name: &str) -> String {
    let registry = match registry_of(shared) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => return format_error(&format!("cannot read {path}: {e}")),
    };
    let bif = match evprop_bayesnet::bif::parse(&src) {
        Ok(bif) => bif,
        Err(e) => return format_error(&format!("cannot parse {path}: {e}")),
    };
    let session = match evprop_core::InferenceSession::from_network(&bif.network) {
        Ok(s) => s,
        Err(e) => return format_error(&format!("cannot compile {path}: {e}")),
    };
    let model = Arc::clone(session.model());
    match registry.install(name, model, Arc::new(bif)) {
        Ok(handle) => format_model_loaded(&handle.tag(), handle.resident_bytes()),
        Err(e) => format_error(&e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NumericNames;
    use crate::runtime::RuntimeConfig;
    use evprop_bayesnet::networks;
    use evprop_core::{InferenceSession, SequentialEngine};
    use evprop_potential::{EvidenceSet, VarId};

    fn boot() -> (TcpServer, SocketAddr) {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let runtime = Arc::new(ShardedRuntime::new(
            session,
            RuntimeConfig::new(2, 1).without_partitioning(),
        ));
        let names = Arc::new(NumericNames::of(&net));
        let server = TcpServer::bind("127.0.0.1:0", runtime, names).unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    fn roundtrip(stream: &TcpStream, request: &str) -> String {
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        writeln!(w, "{request}").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_queries_and_errors_over_tcp() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();

        let response = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        // The answer must match the sequential engine bit-for-bit.
        let session = InferenceSession::from_network(&networks::asia()).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(7), 1);
        let want = session.posterior(&SequentialEngine, VarId(3), &ev).unwrap();
        let expected = format_response(&NumericNames::of(&networks::asia()), VarId(3), &want);
        assert_eq!(response, expected);

        let err = roundtrip(&stream, r#"{"target": "bogus"}"#);
        assert!(err.contains("\"error\""), "got: {err}");

        // The connection survives the error and keeps answering.
        let again = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        assert_eq!(again, expected);

        server.stop();
    }

    #[test]
    fn concurrent_connections_are_isolated() {
        let (mut server, addr) = boot();
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let req = format!(r#"{{"target": "v{}", "evidence": {{"v7": 1}}}}"#, i % 8);
                    let resp = roundtrip(&stream, &req);
                    assert!(resp.contains("\"marginal\""), "got: {resp}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn timing_fields_are_opt_in() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();

        // Default: byte-identical to the plain response (golden-stable).
        let plain = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        assert!(!plain.contains("queue_us"), "got: {plain}");
        assert!(!plain.contains("exec_us"), "got: {plain}");

        // Opted in: same answer plus a sane timing pair.
        let timed = roundtrip(
            &stream,
            r#"{"target": "v3", "evidence": {"v7": 1}, "timing": true}"#,
        );
        use crate::protocol::{parse_json, Json};
        let v = parse_json(&timed).unwrap();
        let plain_v = parse_json(&plain).unwrap();
        assert_eq!(v.get("marginal"), plain_v.get("marginal"));
        let Some(Json::Num(queue)) = v.get("queue_us") else {
            panic!("missing queue_us: {timed}");
        };
        let Some(Json::Num(exec)) = v.get("exec_us") else {
            panic!("missing exec_us: {timed}");
        };
        assert!(*queue >= 0.0 && *queue < 60_000_000.0, "queue_us {queue}");
        assert!(*exec >= 0.0 && *exec < 60_000_000.0, "exec_us {exec}");
        assert!(matches!(v.get("shard"), Some(Json::Num(_))), "{timed}");
        server.stop();
    }

    #[test]
    fn stats_and_trace_commands() {
        use crate::protocol::{parse_json, Json};
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        for _ in 0..3 {
            roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        }

        let stats_line = roundtrip(&stream, r#"{"cmd": "stats"}"#);
        let v = parse_json(&stats_line).unwrap();
        let stats = v.get("stats").expect("stats object");
        assert_eq!(stats.get("served"), Some(&Json::Num(3.0)));
        assert_eq!(stats.get("errors"), Some(&Json::Num(0.0)));
        let Some(Json::Arr(shards)) = stats.get("shards") else {
            panic!("missing shards: {stats_line}");
        };
        assert_eq!(shards.len(), 2);

        let trace_line = roundtrip(&stream, r#"{"cmd": "trace"}"#);
        let v = parse_json(&trace_line).unwrap();
        let Some(Json::Arr(recent)) = v.get("trace").and_then(|t| t.get("recent")) else {
            panic!("missing trace.recent: {trace_line}");
        };
        assert_eq!(recent.len(), 3);
        for q in recent {
            assert_eq!(q.get("target"), Some(&Json::Str("v3".into())));
            assert_eq!(q.get("ok"), Some(&Json::Bool(true)));
            assert!(matches!(q.get("exec_us"), Some(Json::Num(_))));
        }

        let err = roundtrip(&stream, r#"{"cmd": "nonsense"}"#);
        assert!(err.contains("\"error\""), "got: {err}");
        server.stop();
    }

    #[test]
    fn session_commands_over_tcp() {
        use crate::protocol::{parse_json, Json};
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();

        let opened = roundtrip(&stream, r#"{"cmd": "session-open"}"#);
        assert_eq!(opened, r#"{"session":1}"#);

        let ack = roundtrip(
            &stream,
            r#"{"cmd": "session-set", "session": 1, "var": "v7", "state": 1}"#,
        );
        assert_eq!(ack, r#"{"ok":true}"#);

        // The session answer matches the stateless path numerically and
        // reports how it was computed.
        let line = roundtrip(
            &stream,
            r#"{"cmd": "session-query", "session": 1, "target": "v3"}"#,
        );
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("mode"), Some(&Json::Str("incremental".into())));
        assert!(matches!(v.get("dirty"), Some(Json::Num(_))), "{line}");
        let stateless = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        let sv = parse_json(&stateless).unwrap();
        let (Some(Json::Arr(got)), Some(Json::Arr(want))) = (v.get("marginal"), sv.get("marginal"))
        else {
            panic!("missing marginal: {line} / {stateless}");
        };
        for (g, w) in got.iter().zip(want) {
            let (Json::Num(g), Json::Num(w)) = (g, w) else {
                panic!()
            };
            assert!((g - w).abs() < 1e-9, "{line} vs {stateless}");
        }

        let removed = roundtrip(
            &stream,
            r#"{"cmd": "session-retract", "session": 1, "var": "v7"}"#,
        );
        assert_eq!(removed, r#"{"ok":true,"removed":"1"}"#);
        let again = roundtrip(
            &stream,
            r#"{"cmd": "session-retract", "session": 1, "var": "v7"}"#,
        );
        assert_eq!(again, r#"{"ok":true}"#, "no-op retraction");

        assert_eq!(
            roundtrip(&stream, r#"{"cmd": "session-close", "session": 1}"#),
            r#"{"ok":true}"#
        );
        let gone = roundtrip(
            &stream,
            r#"{"cmd": "session-query", "session": 1, "target": "v3"}"#,
        );
        assert!(gone.contains("\"error\""), "got: {gone}");

        // Stats now carry the sessions object.
        let stats_line = roundtrip(&stream, r#"{"cmd": "stats"}"#);
        let v = parse_json(&stats_line).unwrap();
        let sessions = v
            .get("stats")
            .and_then(|s| s.get("sessions"))
            .expect("sessions object after first open");
        assert_eq!(sessions.get("opened"), Some(&Json::Num(1.0)));
        assert_eq!(sessions.get("closed"), Some(&Json::Num(1.0)));
        assert_eq!(sessions.get("open"), Some(&Json::Num(0.0)));
        server.stop();
    }

    fn boot_registry() -> (TcpServer, SocketAddr, Arc<ModelRegistry>) {
        let asia = networks::asia();
        let student = networks::student();
        let registry = Arc::new(ModelRegistry::new());
        for (name, net) in [("asia", &asia), ("student", &student)] {
            let session = InferenceSession::from_network(net).unwrap();
            registry
                .install(
                    name,
                    Arc::clone(session.model()),
                    Arc::new(NumericNames::of(net)),
                )
                .unwrap();
        }
        let runtime = Arc::new(
            ShardedRuntime::with_registry(
                Arc::clone(&registry),
                "asia",
                RuntimeConfig::new(1, 1).without_partitioning(),
            )
            .unwrap(),
        );
        let names = Arc::new(NumericNames::of(&asia));
        let server = TcpServer::bind("127.0.0.1:0", runtime, names).unwrap();
        let addr = server.local_addr();
        (server, addr, registry)
    }

    #[test]
    fn model_commands_and_named_queries_over_tcp() {
        use crate::protocol::{parse_json, with_model_tag, Json};
        let (mut server, addr, _registry) = boot_registry();
        let stream = TcpStream::connect(addr).unwrap();

        // A named query is answered by that model's tables and tagged
        // with the exact version — byte-for-byte predictable.
        let line = roundtrip(&stream, r#"{"model": "student", "target": "v2"}"#);
        let student = networks::student();
        let want = InferenceSession::from_network(&student)
            .unwrap()
            .posterior(&SequentialEngine, VarId(2), &EvidenceSet::new())
            .unwrap();
        let expected = with_model_tag(
            format_response(&NumericNames::of(&student), VarId(2), &want),
            "student@v1",
        );
        assert_eq!(line, expected);

        // Default-alias queries stay untagged (golden-stable output).
        let plain = roundtrip(&stream, r#"{"target": "v3"}"#);
        assert!(!plain.contains("\"model\""), "got: {plain}");

        // model-list names both models, sorted and deterministic.
        let list = roundtrip(&stream, r#"{"cmd": "model-list"}"#);
        assert!(
            list.contains(r#""name":"asia""#) && list.contains(r#""name":"student""#),
            "got: {list}"
        );

        // Load a third model over the wire, then query it by name.
        let path = std::env::temp_dir().join("evprop_model_cmd_test.bif");
        let bif_src = evprop_bayesnet::bif::write(&evprop_bayesnet::bif::with_generated_names(
            networks::sprinkler(),
            "sprinkler",
        ));
        std::fs::write(&path, bif_src).unwrap();
        let loaded = roundtrip(
            &stream,
            &format!(
                r#"{{"cmd": "model-load", "path": "{}", "name": "sprinkler"}}"#,
                path.display()
            ),
        );
        assert!(
            loaded.starts_with(r#"{"ok":true,"model":"sprinkler@v1","bytes":"#),
            "got: {loaded}"
        );
        let resp = roundtrip(&stream, r#"{"model": "sprinkler", "target": "v1"}"#);
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("model"), Some(&Json::Str("sprinkler@v1".into())));

        // A session pinned to a named model reports its version and
        // keeps answering after the model is unloaded.
        let opened = roundtrip(&stream, r#"{"cmd": "session-open", "model": "student"}"#);
        assert_eq!(opened, r#"{"session":1,"model":"student@v1"}"#);
        let unloaded = roundtrip(&stream, r#"{"cmd": "model-unload", "name": "student"}"#);
        assert_eq!(unloaded, r#"{"ok":true,"unloaded":["student@v1"]}"#);
        let sq = roundtrip(
            &stream,
            r#"{"cmd": "session-query", "session": 1, "target": "v2"}"#,
        );
        assert!(sq.contains("\"marginal\""), "got: {sq}");
        let gone = roundtrip(&stream, r#"{"model": "student", "target": "v2"}"#);
        assert!(gone.contains("\"error\""), "got: {gone}");

        // Swap acks with the exact retargeted version.
        let swapped = roundtrip(
            &stream,
            r#"{"cmd": "model-swap", "name": "asia", "version": 1}"#,
        );
        assert_eq!(swapped, r#"{"ok":true,"model":"asia@v1"}"#);

        server.stop();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn model_commands_without_registry_are_rejected() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(&stream, r#"{"cmd": "model-list"}"#);
        assert!(resp.contains("no model registry"), "got: {resp}");
        let resp = roundtrip(&stream, r#"{"model": "asia", "target": "v3"}"#);
        assert!(resp.contains("\"error\""), "got: {resp}");
        server.stop();
    }

    #[test]
    fn drain_command_acks_and_releases_waiters() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        // Work submitted before the drain is still answered.
        let before = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        assert!(before.contains("\"marginal\""), "got: {before}");

        let ack = roundtrip(&stream, r#"{"cmd": "drain"}"#);
        assert_eq!(ack, r#"{"ok":true,"draining":true}"#);
        server.wait_for_drain(); // returns without stop() being called

        // Admission is closed: new queries are refused with a clean
        // error while the connection stays usable for the refusal.
        let refused = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        assert!(refused.contains("shutting down"), "got: {refused}");
        server.stop();
    }

    #[test]
    fn stop_releases_wait_for_drain() {
        let (mut server, _addr) = boot();
        let shared = Arc::clone(&server.shared);
        let waiter = std::thread::spawn(move || {
            let mut draining = shared.draining.lock();
            while !*draining && !shared.stop.load(Ordering::SeqCst) {
                shared.drain_cv.wait(&mut draining);
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        server.stop();
        waiter.join().unwrap();
    }

    #[test]
    fn connection_limit_refuses_with_an_error_line() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let runtime = Arc::new(ShardedRuntime::new(
            session,
            RuntimeConfig::new(1, 1).without_partitioning(),
        ));
        let names = Arc::new(NumericNames::of(&net));
        let options = ServerOptions {
            max_conns: 1,
            ..ServerOptions::default()
        };
        let mut server = TcpServer::bind_with("127.0.0.1:0", runtime, names, options).unwrap();
        let addr = server.local_addr();

        let first = TcpStream::connect(addr).unwrap();
        let ok = roundtrip(&first, r#"{"target": "v3"}"#);
        assert!(ok.contains("\"marginal\""), "got: {ok}");

        // The second connection is refused with one explanatory line.
        let second = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(second);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("connection limit reached"), "got: {line}");
        line.clear();
        let n = r.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "refused connection is closed after the error");

        // Closing the first connection frees the slot.
        drop(first);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let reused = loop {
            let third = TcpStream::connect(addr).unwrap();
            let resp = roundtrip(&third, r#"{"target": "v3"}"#);
            if resp.contains("\"marginal\"") {
                break true;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "slot never freed: {resp}"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(reused);
        server.stop();
    }

    #[test]
    fn oversized_request_line_is_rejected_and_connection_closed() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let runtime = Arc::new(ShardedRuntime::new(
            session,
            RuntimeConfig::new(1, 1).without_partitioning(),
        ));
        let names = Arc::new(NumericNames::of(&net));
        let options = ServerOptions {
            max_line_bytes: 256,
            ..ServerOptions::default()
        };
        let mut server = TcpServer::bind_with("127.0.0.1:0", runtime, names, options).unwrap();
        let addr = server.local_addr();

        let stream = TcpStream::connect(addr).unwrap();
        // A line under the cap still works.
        let ok = roundtrip(&stream, r#"{"target": "v3"}"#);
        assert!(ok.contains("\"marginal\""), "got: {ok}");

        // A line over the cap gets one error and then EOF.
        let huge = format!(r#"{{"target": "v3", "junk": "{}"}}"#, "x".repeat(512));
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        writeln!(w, "{huge}").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(stream);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(
            line.contains("request line exceeds 256 bytes"),
            "got: {line}"
        );
        line.clear();
        assert_eq!(r.read_line(&mut line).unwrap(), 0, "connection closed");
        server.stop();
    }

    #[test]
    fn idle_connections_are_reaped_by_read_timeout() {
        let net = networks::asia();
        let session = InferenceSession::from_network(&net).unwrap();
        let runtime = Arc::new(ShardedRuntime::new(
            session,
            RuntimeConfig::new(1, 1).without_partitioning(),
        ));
        let names = Arc::new(NumericNames::of(&net));
        let options = ServerOptions {
            read_timeout: Some(Duration::from_millis(50)),
            ..ServerOptions::default()
        };
        let mut server = TcpServer::bind_with("127.0.0.1:0", runtime, names, options).unwrap();
        let addr = server.local_addr();

        let stream = TcpStream::connect(addr).unwrap();
        // Idle past the timeout: the server hangs up (we observe EOF).
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        let n = r.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "idle connection should be closed, got: {line}");
        server.stop();
    }

    #[test]
    fn deadline_ms_rides_the_wire() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        // A generous deadline changes nothing about the answer.
        let plain = roundtrip(&stream, r#"{"target": "v3", "evidence": {"v7": 1}}"#);
        let armed = roundtrip(
            &stream,
            r#"{"target": "v3", "evidence": {"v7": 1}, "deadline_ms": 60000}"#,
        );
        assert_eq!(plain, armed, "completed deadline query is bit-identical");
        // An already-expired deadline is a deterministic refusal.
        let shed = roundtrip(
            &stream,
            r#"{"target": "v3", "evidence": {"v7": 1}, "deadline_ms": 0}"#,
        );
        assert!(shed.contains("deadline_exceeded"), "got: {shed}");
        server.stop();
    }

    #[test]
    fn stop_unblocks_idle_clients() {
        let (mut server, addr) = boot();
        let stream = TcpStream::connect(addr).unwrap();
        // An idle client is mid-read when the server stops.
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(stream);
            let mut line = String::new();
            r.read_line(&mut line) // unblocked by the shutdown
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.stop();
        let n = reader.join().unwrap().unwrap_or(0);
        assert_eq!(n, 0, "client read should see EOF");
    }
}
