//! Dirty-slice extraction: build the *fragment* of the propagation DAG
//! that an incremental evidence update actually needs to re-run.
//!
//! After a full two-phase propagation, the table arena holds every
//! clique belief, every collect separator `ψ*_S` (`sep_up`), every
//! extended collect message (`ext_up`), and every distribute separator
//! `ψ**_S` (`sep_down`). A later query under slightly different
//! evidence can reuse most of that state:
//!
//! * a child's collect message depends only on the evidence inside its
//!   subtree, so messages from *clean* subtrees are still valid and are
//!   re-multiplied from their cached `ext_up` buffers without
//!   recomputation;
//! * a clique whose belief is calibrated under older evidence can be
//!   updated Hugin-style by multiplying in the *ratio* of the new to
//!   the old parent marginal, dividing against the stored `sep_down`
//!   table — no upstream work at all (valid only when the stored
//!   denominator has no zero entry; the caller checks and falls back to
//!   full repropagation otherwise).
//!
//! [`TaskGraph::incremental_slice`] turns a [`SlicePlan`] — which
//! cliques to re-collect and which root-to-target path to distribute
//! along — into a standalone [`TaskGraph`] over the **same buffer
//! table** as the full graph, so it runs on the session's resident
//! arena unchanged. Plans are re-interned through a clone of the full
//! graph's [`PlanCache`], which makes every intern a structural cache
//! hit: a slice never compiles a kernel.

use crate::graph::{BufferId, Phase, Task, TaskGraph, TaskId, TaskKind};
use evprop_jtree::{CliqueId, TreeShape};
use evprop_potential::EntryRange;

/// How one edge on the distribute path is brought up to date (the edge
/// is identified by its child clique).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// The child was just re-collected (it holds a post-collect value
    /// for the current evidence): run the ordinary distribute chain,
    /// dividing the new parent marginal by the child's fresh `sep_up`.
    Fresh,
    /// The child's belief is calibrated under *older* evidence whose
    /// subtree part is unchanged: multiply in the ratio of the new
    /// parent marginal to the stored `sep_down`. The caller must have
    /// verified the stored `sep_down` has no zero entries.
    Stale,
    /// The child is already calibrated under the current evidence:
    /// emit nothing, just walk through it.
    Skip,
}

/// The slice a session wants executed: which cliques to re-collect and
/// which path to distribute along.
#[derive(Clone, Debug, Default)]
pub struct SlicePlan {
    /// Re-collect set, one flag per clique. Must be **upward-closed**:
    /// whenever a clique is flagged, so are all of its ancestors (the
    /// root included). Flagged cliques must have had their arena
    /// buffers re-initialized (potential copied back, current evidence
    /// absorbed) before the slice runs.
    pub recollect: Vec<bool>,
    /// Distribute edges in root-to-target order, each named by its
    /// child clique. Every edge on the path must appear (use
    /// [`EdgeUpdate::Skip`] for already-current children).
    pub path: Vec<(CliqueId, EdgeUpdate)>,
}

impl SlicePlan {
    /// Number of cliques flagged for re-collection.
    pub fn dirty_cliques(&self) -> usize {
        self.recollect.iter().filter(|&&d| d).count()
    }

    /// Number of stale edges on the distribute path.
    pub fn stale_edges(&self) -> usize {
        self.path
            .iter()
            .filter(|(_, u)| *u == EdgeUpdate::Stale)
            .count()
    }
}

/// Read/write hazard tracker: derives dependencies so that every task
/// runs after the last writer of each buffer it reads, after the last
/// writer of its destination, and after every reader of its destination
/// since that write (write-after-read). Emission order therefore fixes
/// the serialization of same-buffer writers — the slice builder emits
/// multiplies in the full graph's children order, which keeps slice
/// arithmetic bit-identical to full propagation on unpartitioned runs.
struct Hazards {
    last_write: Vec<Option<TaskId>>,
    reads_since: Vec<Vec<TaskId>>,
}

impl Hazards {
    fn new(buffers: usize) -> Self {
        Hazards {
            last_write: vec![None; buffers],
            reads_since: vec![Vec::new(); buffers],
        }
    }

    fn emit(&mut self, g: &mut TaskGraph, task: Task) -> TaskId {
        let reads = task.kind.reads();
        let dst = task.kind.dst();
        let mut deps: Vec<TaskId> = Vec::new();
        let add = |t: TaskId, deps: &mut Vec<TaskId>| {
            if !deps.contains(&t) {
                deps.push(t);
            }
        };
        for r in &reads {
            if let Some(w) = self.last_write[r.index()] {
                add(w, &mut deps);
            }
        }
        if let Some(w) = self.last_write[dst.index()] {
            add(w, &mut deps);
        }
        for &r in &self.reads_since[dst.index()] {
            add(r, &mut deps);
        }
        let id = g.push_task_pub(task, deps);
        for r in reads {
            if r != dst {
                self.reads_since[r.index()].push(id);
            }
        }
        self.last_write[dst.index()] = Some(id);
        self.reads_since[dst.index()].clear();
        id
    }
}

impl TaskGraph {
    pub(crate) fn push_task_pub(&mut self, task: Task, deps: Vec<TaskId>) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        self.succ.push(Vec::new());
        self.pred_count.push(deps.len() as u32);
        for d in deps {
            self.succ[d.index()].push(id);
        }
        id
    }

    /// Builds the dirty-slice graph for `plan` over this full two-phase
    /// graph. The result shares this graph's buffer table (same ids,
    /// same count), so it executes on an arena initialized for the full
    /// graph; its kernel plans are structural cache hits against this
    /// graph's interned plans.
    ///
    /// The collect part walks `plan.recollect` in postorder: for each
    /// flagged clique, dirty children's messages are recomputed
    /// (marginalize → extend, the divide skipped because `sep_old` is
    /// all-ones) and every child's `ext_up` — cached or fresh — is
    /// multiplied back in, in children order. The distribute part walks
    /// `plan.path` from the root outward, emitting the standard chain
    /// for [`EdgeUpdate::Fresh`] edges and the division-against-stored-
    /// `sep_down` chain for [`EdgeUpdate::Stale`] edges.
    ///
    /// # Panics
    ///
    /// Panics if `plan.recollect` is flagged on a clique whose parent is
    /// not flagged (the set must be upward-closed), if a path edge's
    /// child is the root, or if this graph lacks distribute buffers
    /// (collect-only graphs cannot slice).
    pub fn incremental_slice(&self, shape: &TreeShape, plan: &SlicePlan) -> TaskGraph {
        let mut g = self.slice_scaffold();
        self.slice_into(&mut g, shape, plan);
        g
    }

    /// An empty slice graph sharing this graph's buffer table and a
    /// clone of its interned plans — the reusable scaffold for
    /// [`TaskGraph::slice_into`]. Cloning the buffer specs and the
    /// plan index is the expensive part of slice construction
    /// (`O(buffers)` domain clones plus a hashmap rebuild); a session
    /// answering many incremental queries builds one scaffold and
    /// refills its task list per query instead of paying that cost
    /// every time.
    pub fn slice_scaffold(&self) -> TaskGraph {
        TaskGraph {
            tasks: Vec::new(),
            succ: Vec::new(),
            pred_count: Vec::new(),
            buffers: self.buffers.clone(),
            clique_buffers: self.clique_buffers.clone(),
            edge_buffers: self.edge_buffers.clone(),
            plans: self.plans.clone(),
        }
    }

    /// Rebuilds the dirty-slice task list for `plan` **into**
    /// `scratch`, a scaffold previously obtained from
    /// [`TaskGraph::slice_scaffold`] on this same graph. The scratch
    /// graph's tasks, dependency edges, and per-task plan memo are
    /// cleared (task ids are reassigned on every rebuild); its buffer
    /// table and interned plan shapes — the expensive parts — are kept.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`TaskGraph::incremental_slice`],
    /// or if `scratch`'s buffer table does not match this graph's.
    pub fn slice_into(&self, scratch: &mut TaskGraph, shape: &TreeShape, plan: &SlicePlan) {
        let n = shape.num_cliques();
        assert_eq!(plan.recollect.len(), n, "one recollect flag per clique");
        assert_eq!(
            scratch.buffers.len(),
            self.buffers.len(),
            "scratch graph was not scaffolded from this graph"
        );
        scratch.tasks.clear();
        scratch.succ.clear();
        scratch.pred_count.clear();
        scratch.plans.reset_memo();
        let g = scratch;
        let mut hz = Hazards::new(g.buffers.len());

        // ---------------- collect along dirty paths ----------------
        for &c in &shape.postorder() {
            if !plan.recollect[c.index()] {
                continue;
            }
            if let Some(p) = shape.parent(c) {
                assert!(
                    plan.recollect[p.index()],
                    "recollect set must be upward-closed ({c:?} flagged, parent {p:?} not)"
                );
            }
            for &ch in shape.children(c) {
                let eb = self.edge_buffers[ch.index()].expect("non-root cliques have edge buffers");
                let sep_dom = shape.parent_separator(ch);
                let clique_dom = shape.domain(ch);
                let parent_dom = shape.domain(c);
                if plan.recollect[ch.index()] {
                    // Dirty child: recompute its message. The divide
                    // against sep_old is skipped — sep_old is all-ones
                    // in the resident arena, so ratio_up ≡ sep_up and
                    // extending sep_up directly produces the exact
                    // full-graph ext_up value.
                    let marg_plan = g
                        .plans
                        .intern(clique_dom, sep_dom, EntryRange::full(clique_dom.size()))
                        .expect("separator domain nests in clique domain");
                    hz.emit(
                        g,
                        Task {
                            kind: TaskKind::Marginalize {
                                src: self.clique_buffers[ch.index()],
                                dst: eb.sep_up,
                                max: false,
                            },
                            weight: clique_dom.size() as u64,
                            phase: Phase::Collect,
                            clique: ch,
                            plan: Some(marg_plan),
                        },
                    );
                    let ext_plan = g
                        .plans
                        .intern(parent_dom, sep_dom, EntryRange::full(parent_dom.size()))
                        .expect("separator domain nests in parent domain");
                    hz.emit(
                        g,
                        Task {
                            kind: TaskKind::Extend {
                                src: eb.sep_up,
                                dst: eb.ext_up,
                            },
                            weight: parent_dom.size() as u64,
                            phase: Phase::Collect,
                            clique: c,
                            plan: Some(ext_plan),
                        },
                    );
                }
                // Every child's message — cached or fresh — multiplies
                // back into the re-initialized parent, in children
                // order (matching the full graph's serialization).
                let mul_plan = g
                    .plans
                    .intern(parent_dom, parent_dom, EntryRange::full(parent_dom.size()))
                    .expect("a domain nests in itself");
                hz.emit(
                    g,
                    Task {
                        kind: TaskKind::Multiply {
                            src: eb.ext_up,
                            dst: self.clique_buffers[c.index()],
                        },
                        weight: parent_dom.size() as u64,
                        phase: Phase::Collect,
                        clique: c,
                        plan: Some(mul_plan),
                    },
                );
            }
        }

        // ------------- distribute along the query path -------------
        for &(ch, update) in &plan.path {
            if update == EdgeUpdate::Skip {
                continue;
            }
            let p = shape.parent(ch).expect("path edges name non-root children");
            let eb = self.edge_buffers[ch.index()].expect("non-root cliques have edge buffers");
            let down = eb.down.expect("incremental slices need distribute buffers");
            let sep_dom = shape.parent_separator(ch);
            let clique_dom = shape.domain(ch);
            let parent_dom = shape.domain(p);
            let sep_len = g.buffers[down.sep_down.index()].domain.size() as u64;
            let marg_plan = g
                .plans
                .intern(parent_dom, sep_dom, EntryRange::full(parent_dom.size()))
                .expect("separator domain nests in parent domain");
            let ext_plan = g
                .plans
                .intern(clique_dom, sep_dom, EntryRange::full(clique_dom.size()))
                .expect("separator domain nests in clique domain");
            let mul_plan = g
                .plans
                .intern(clique_dom, clique_dom, EntryRange::full(clique_dom.size()))
                .expect("a domain nests in itself");
            let marg = |dst: BufferId| Task {
                kind: TaskKind::Marginalize {
                    src: self.clique_buffers[p.index()],
                    dst,
                    max: false,
                },
                weight: parent_dom.size() as u64,
                phase: Phase::Distribute,
                clique: p,
                plan: Some(marg_plan),
            };
            let div = |num: BufferId, den: BufferId| Task {
                kind: TaskKind::Divide {
                    num,
                    den,
                    dst: down.ratio_down,
                },
                weight: sep_len,
                phase: Phase::Distribute,
                clique: ch,
                plan: None,
            };
            match update {
                EdgeUpdate::Fresh => {
                    // Standard Hugin chain: μ_new = Σ_p B(p), ratio
                    // against the child's fresh collect separator.
                    hz.emit(g, marg(down.sep_down));
                    hz.emit(g, div(down.sep_down, eb.sep_up));
                }
                EdgeUpdate::Stale => {
                    // Division update: stash μ_new in sep_old (unused
                    // scratch in slices), ratio it against the *stored*
                    // μ_old in sep_down, then persist μ_new into
                    // sep_down (ordered after the divide's read by the
                    // hazard tracker) so the invariant "sep_down is the
                    // separator marginal of the child's belief" holds
                    // at the child's new epoch.
                    hz.emit(g, marg(eb.sep_old));
                    hz.emit(g, div(eb.sep_old, down.sep_down));
                    hz.emit(g, marg(down.sep_down));
                }
                EdgeUpdate::Skip => unreachable!(),
            }
            hz.emit(
                g,
                Task {
                    kind: TaskKind::Extend {
                        src: down.ratio_down,
                        dst: down.ext_down,
                    },
                    weight: clique_dom.size() as u64,
                    phase: Phase::Distribute,
                    clique: ch,
                    plan: Some(ext_plan),
                },
            );
            hz.emit(
                g,
                Task {
                    kind: TaskKind::Multiply {
                        src: down.ext_down,
                        dst: self.clique_buffers[ch.index()],
                    },
                    weight: clique_dom.size() as u64,
                    phase: Phase::Distribute,
                    clique: ch,
                    plan: Some(mul_plan),
                },
            );
        }

        debug_assert!(g.validate().is_ok(), "slice builder produced invalid graph");
    }
}

impl SlicePlan {
    /// An empty plan (nothing to re-collect, no path) for an `n`-clique
    /// tree.
    pub fn default_for(n: usize) -> Self {
        SlicePlan {
            recollect: vec![false; n],
            path: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_potential::{Domain, PrimitiveKind, VarId, Variable};

    fn dom(ids: &[u32]) -> Domain {
        Domain::new(ids.iter().map(|&i| Variable::binary(VarId(i))).collect()).unwrap()
    }

    /// C0{0,1} — C1{1,2} — C2{2,3} — C3{3,4}, rooted at C0.
    fn path4() -> TreeShape {
        TreeShape::new(
            vec![dom(&[0, 1]), dom(&[1, 2]), dom(&[2, 3]), dom(&[3, 4])],
            &[(0, 1), (1, 2), (2, 3)],
            0,
        )
        .unwrap()
    }

    #[test]
    fn slice_shares_buffers_and_plans() {
        let shape = path4();
        let full = TaskGraph::from_shape(&shape);
        let plans_before = full.plans().len();
        let plan = SlicePlan {
            recollect: vec![true, true, false, false],
            path: vec![(CliqueId(1), EdgeUpdate::Fresh)],
        };
        let slice = full.incremental_slice(&shape, &plan);
        assert_eq!(slice.buffers().len(), full.buffers().len());
        // every intern was a structural cache hit
        assert_eq!(slice.plans().len(), plans_before);
        slice.validate().unwrap();
    }

    #[test]
    fn recollect_emits_cached_muls_for_clean_children() {
        let shape = path4();
        let full = TaskGraph::from_shape(&shape);
        // only the root re-collects: its single child C1 is clean, so
        // the slice is one multiply from the cached ext_up
        let plan = SlicePlan {
            recollect: vec![true, false, false, false],
            path: vec![],
        };
        let slice = full.incremental_slice(&shape, &plan);
        assert_eq!(slice.num_tasks(), 1);
        assert_eq!(
            slice.task(TaskId(0)).kind.primitive(),
            PrimitiveKind::Multiply
        );
    }

    #[test]
    fn stale_edge_emits_division_chain() {
        let shape = path4();
        let full = TaskGraph::from_shape(&shape);
        let plan = SlicePlan {
            recollect: vec![false; 4],
            path: vec![
                (CliqueId(1), EdgeUpdate::Stale),
                (CliqueId(2), EdgeUpdate::Skip),
            ],
        };
        assert_eq!(plan.stale_edges(), 1);
        let slice = full.incremental_slice(&shape, &plan);
        // Marg(μ_new) + Div + Marg(persist) + Ext + Mul, skip emits none
        assert_eq!(slice.num_tasks(), 5);
        slice.validate().unwrap();
        // the divide reads sep_down before the persisting marg rewrites it
        let order = slice.topological_order().unwrap();
        let div_pos = order
            .iter()
            .position(|&t| slice.task(t).kind.primitive() == PrimitiveKind::Divide)
            .unwrap();
        let second_marg_pos = order
            .iter()
            .rposition(|&t| slice.task(t).kind.primitive() == PrimitiveKind::Marginalize)
            .unwrap();
        assert!(div_pos < second_marg_pos);
    }

    #[test]
    #[should_panic(expected = "upward-closed")]
    fn non_upward_closed_recollect_panics() {
        let shape = path4();
        let full = TaskGraph::from_shape(&shape);
        let plan = SlicePlan {
            recollect: vec![false, false, true, false],
            path: vec![],
        };
        let _ = full.incremental_slice(&shape, &plan);
    }

    #[test]
    fn empty_plan_builds_empty_graph() {
        let shape = path4();
        let full = TaskGraph::from_shape(&shape);
        let slice = full.incremental_slice(&shape, &SlicePlan::default_for(4));
        assert_eq!(slice.num_tasks(), 0);
    }
}
