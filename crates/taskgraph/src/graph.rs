//! The task DAG data structures.

use crate::plan_cache::{PlanCache, PlanId};
use evprop_jtree::CliqueId;
use evprop_potential::plan::KernelPlan;
use evprop_potential::{Domain, EntryRange, PrimitiveKind};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Index of a task in a [`TaskGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Index of a buffer (a potential table the tasks read/write).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BufferId(pub usize);

impl BufferId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// How an engine initializes a buffer before propagation starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferInit {
    /// Copy the junction tree's initial potential of this clique (then
    /// absorb evidence into it).
    CliquePotential(CliqueId),
    /// Fill with ones (separators, ψ_S ≡ 1 initially).
    Ones,
    /// Fill with zeros (marginalization targets, scratch).
    Zeros,
}

/// Size and initialization of one buffer.
#[derive(Clone, Debug)]
pub struct BufferSpec {
    /// The buffer's variable set.
    pub domain: Domain,
    /// How to initialize it.
    pub init: BufferInit,
}

/// The scratch-buffer ids of one junction-tree edge (identified by its
/// child clique). Recorded at build time so incremental slices
/// ([`TaskGraph::incremental_slice`]) can re-address the exact buffers
/// the full graph uses.
#[derive(Clone, Copy, Debug)]
pub struct EdgeBuffers {
    /// ψ_S — the original separator (initialized to ones; never written
    /// by the full graph, reused as stale-edge scratch by slices).
    pub sep_old: BufferId,
    /// ψ*_S — collect-phase marginal of the child clique.
    pub sep_up: BufferId,
    /// ψ*_S / ψ_S — collect-phase ratio.
    pub ratio_up: BufferId,
    /// The collect ratio extended over the parent clique's domain.
    pub ext_up: BufferId,
    /// Distribute-phase buffers; absent in collect-only graphs.
    pub down: Option<DownBuffers>,
}

/// Distribute-phase scratch for one edge.
#[derive(Clone, Copy, Debug)]
pub struct DownBuffers {
    /// ψ**_S — distribute-phase marginal of the parent clique.
    pub sep_down: BufferId,
    /// ψ**_S / ψ*_S — distribute-phase ratio.
    pub ratio_down: BufferId,
    /// The ratio extended over the child clique's domain.
    pub ext_down: BufferId,
}

/// Which algebra the propagation runs in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PropagationMode {
    /// Ordinary evidence propagation: marginals are sums.
    #[default]
    SumProduct,
    /// Dawid max-propagation: marginals are maxima; calibrated cliques
    /// hold max-marginals, from which the most probable explanation is
    /// decoded.
    MaxProduct,
}

/// Which propagation phase a task belongs to (the two symmetric halves of
/// the clique updating graph, Fig. 2a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Evidence flows leaves → root.
    Collect,
    /// Evidence flows root → leaves.
    Distribute,
}

/// The operation a task performs. Every task writes exactly one buffer
/// (`dst`) and reads at most two others — the invariant that makes
/// DAG-ordered parallel execution race-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// `dst = Σ src` over the eliminated variables (`dst`'s domain ⊆
    /// `src`'s). The task zeroes `dst` before accumulating.
    Marginalize {
        /// Clique-sized source.
        src: BufferId,
        /// Separator-sized destination.
        dst: BufferId,
        /// `false` = sum out (ordinary evidence propagation);
        /// `true` = max out (Dawid max-propagation for MPE queries).
        max: bool,
    },
    /// `dst = num / den` elementwise with `0/0 = 0` (identical domains).
    Divide {
        /// Updated separator ψ*_S.
        num: BufferId,
        /// Original separator ψ_S.
        den: BufferId,
        /// Ratio output.
        dst: BufferId,
    },
    /// `dst[i] = src[project(i)]`: replicate a separator over a clique
    /// domain (`src`'s domain ⊆ `dst`'s).
    Extend {
        /// Separator-sized source.
        src: BufferId,
        /// Clique-sized destination.
        dst: BufferId,
    },
    /// `dst[i] *= src[i]` elementwise (identical domains — `src` is the
    /// extended ratio).
    Multiply {
        /// Extended-ratio source.
        src: BufferId,
        /// Clique potential destination.
        dst: BufferId,
    },
}

impl TaskKind {
    /// The buffer this task writes.
    pub fn dst(&self) -> BufferId {
        match *self {
            TaskKind::Marginalize { dst, .. }
            | TaskKind::Divide { dst, .. }
            | TaskKind::Extend { dst, .. }
            | TaskKind::Multiply { dst, .. } => dst,
        }
    }

    /// The buffers this task reads (one or two).
    pub fn reads(&self) -> Vec<BufferId> {
        match *self {
            TaskKind::Marginalize { src, .. } | TaskKind::Extend { src, .. } => vec![src],
            TaskKind::Divide { num, den, .. } => vec![num, den],
            TaskKind::Multiply { src, dst } => vec![src, dst],
        }
    }

    /// The node-level primitive this task performs.
    pub fn primitive(&self) -> PrimitiveKind {
        match self {
            TaskKind::Marginalize { .. } => PrimitiveKind::Marginalize,
            TaskKind::Divide { .. } => PrimitiveKind::Divide,
            TaskKind::Extend { .. } => PrimitiveKind::Extend,
            TaskKind::Multiply { .. } => PrimitiveKind::Multiply,
        }
    }
}

/// One schedulable task: a primitive plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Task {
    /// What to execute.
    pub kind: TaskKind,
    /// Work size — the scheduler's load-balancing weight and the
    /// simulator's cost driver. Derived from the compiled plan's
    /// inner-loop op count ([`KernelPlan::ops`]), which equals the
    /// partitionable table's length (source for marginalization,
    /// destination otherwise); `Divide` has no cross-domain plan and
    /// keeps its separator length.
    pub weight: u64,
    /// Which propagation phase the task belongs to.
    pub phase: Phase,
    /// The clique whose update this task is part of (the *receiving*
    /// clique of the message).
    pub clique: CliqueId,
    /// The interned full-range [`KernelPlan`] for this task's
    /// cross-domain index map; `None` for `Divide`, which is
    /// contiguous on both sides.
    pub plan: Option<PlanId>,
}

/// Errors detected by [`TaskGraph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaskGraphError {
    /// The graph has a dependency cycle (builder bug).
    Cyclic,
    /// A task references a buffer id out of range.
    BadBuffer(TaskId),
    /// Two tasks write the same buffer without an ordering path between
    /// them (write-write race).
    UnorderedWriters(TaskId, TaskId),
}

impl fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskGraphError::Cyclic => write!(f, "task graph contains a cycle"),
            TaskGraphError::BadBuffer(t) => write!(f, "task {t:?} references unknown buffer"),
            TaskGraphError::UnorderedWriters(a, b) => {
                write!(f, "tasks {a:?} and {b:?} write the same buffer unordered")
            }
        }
    }
}

impl Error for TaskGraphError {}

/// The global task dependency graph `G` plus the buffer table it runs on.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) succ: Vec<Vec<TaskId>>,
    pub(crate) pred_count: Vec<u32>,
    pub(crate) buffers: Vec<BufferSpec>,
    /// Buffer holding each clique's potential, indexed by clique id.
    pub(crate) clique_buffers: Vec<BufferId>,
    /// Per-edge scratch buffers, indexed by child clique (`None` for the
    /// root, which has no parent edge).
    pub(crate) edge_buffers: Vec<Option<EdgeBuffers>>,
    /// Interned kernel plans compiled at build time (plus lazily
    /// interned δ-subrange plans the scheduler adds at run time).
    pub(crate) plans: PlanCache,
}

impl TaskGraph {
    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The task with the given id.
    #[inline]
    pub fn task(&self, t: TaskId) -> &Task {
        &self.tasks[t.index()]
    }

    /// All tasks, indexed by id.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Successor tasks of `t` (tasks with an incoming edge from `t`).
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succ[t.index()]
    }

    /// Initial dependency degree of `t` (number of incoming edges).
    #[inline]
    pub fn dependency_degree(&self, t: TaskId) -> u32 {
        self.pred_count[t.index()]
    }

    /// Buffer specifications, indexed by [`BufferId`].
    #[inline]
    pub fn buffers(&self) -> &[BufferSpec] {
        &self.buffers
    }

    /// The buffer holding clique `c`'s potential.
    #[inline]
    pub fn clique_buffer(&self, c: CliqueId) -> BufferId {
        self.clique_buffers[c.index()]
    }

    /// The scratch buffers of the edge whose child clique is `c`
    /// (`None` for the root). In replicated graphs this refers to copy
    /// 0, like [`TaskGraph::clique_buffer`].
    #[inline]
    pub fn edge_buffers(&self, c: CliqueId) -> Option<EdgeBuffers> {
        self.edge_buffers[c.index()]
    }

    /// The first **clique-initialized** buffer whose domain contains
    /// `var`, or `None` when no clique covers it. Engines use this to
    /// route evidence: hard evidence must land in at least one clique,
    /// and each soft likelihood is multiplied into exactly the clique
    /// returned here (applying it to more than one would double-count
    /// the observation).
    pub fn clique_buffer_containing(&self, var: evprop_potential::VarId) -> Option<BufferId> {
        self.buffers
            .iter()
            .enumerate()
            .find(|(_, spec)| {
                matches!(spec.init, BufferInit::CliquePotential(_)) && spec.domain.contains(var)
            })
            .map(|(i, _)| BufferId(i))
    }

    /// The graph's interned kernel-plan cache.
    #[inline]
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// The partitionable table's length for task `t` — the source for
    /// marginalization, the destination otherwise. This is the length
    /// the scheduler's Partition module splits into δ-sized subranges
    /// (decoupled from [`Task::weight`], which is an op count).
    pub fn partition_len(&self, t: TaskId) -> usize {
        let task = &self.tasks[t.index()];
        let buf = match task.kind {
            TaskKind::Marginalize { src, .. } => src,
            _ => task.kind.dst(),
        };
        self.buffers[buf.index()].domain.size()
    }

    /// The (scan, target) domains of task `t`'s cross-domain index
    /// map: scan is walked linearly (marginalization source;
    /// extension/multiplication destination), target is projected.
    /// `None` for `Divide`, which never crosses domains.
    pub fn scan_target_domains(&self, t: TaskId) -> Option<(&Domain, &Domain)> {
        match self.tasks[t.index()].kind {
            TaskKind::Marginalize { src, dst, .. } => Some((
                &self.buffers[src.index()].domain,
                &self.buffers[dst.index()].domain,
            )),
            TaskKind::Extend { src, dst } | TaskKind::Multiply { src, dst } => Some((
                &self.buffers[dst.index()].domain,
                &self.buffers[src.index()].domain,
            )),
            TaskKind::Divide { .. } => None,
        }
    }

    /// The full-range compiled plan of task `t` (`None` for `Divide`).
    pub fn task_plan(&self, t: TaskId) -> Option<Arc<KernelPlan>> {
        self.tasks[t.index()].plan.map(|id| self.plans.get(id))
    }

    /// The compiled plan for subrange `range` of task `t`, interned on
    /// first use and cached thereafter (`None` for `Divide`). This is
    /// the execution-time lookup for δ-partitioned subtasks; use
    /// [`ranged_plan_id`](Self::ranged_plan_id) when only the id (and
    /// no compiled program) is needed.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the task's partitionable table — the
    /// scheduler only splits in-bounds ranges.
    pub fn ranged_plan(&self, t: TaskId, range: EntryRange) -> Option<(PlanId, Arc<KernelPlan>)> {
        let id = self.ranged_plan_id(t, range)?;
        Some((id, self.plans.get(id)))
    }

    /// Interns (or re-keys) the plan shape for subrange `range` of task
    /// `t` without compiling it — the scheduler's allocation-time path,
    /// which needs only the id to stamp on a subtask. `None` for
    /// `Divide`.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the task's partitionable table.
    pub fn ranged_plan_id(&self, t: TaskId, range: EntryRange) -> Option<PlanId> {
        let (scan, target) = self.scan_target_domains(t)?;
        let id = self
            .plans
            .for_task_range(t, scan, target, range)
            .expect("scheduler ranges are in bounds for compiled domains");
        Some(id)
    }

    /// Tasks with dependency degree zero — schedulable immediately.
    pub fn initial_ready(&self) -> Vec<TaskId> {
        (0..self.num_tasks())
            .map(TaskId)
            .filter(|&t| self.pred_count[t.index()] == 0)
            .collect()
    }

    /// Sum of all task weights — the serial work `W`.
    pub fn total_weight(&self) -> u64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// Weight of the heaviest dependency chain — the critical work
    /// `T_∞`; `W / T_∞` bounds achievable speedup.
    pub fn critical_path_weight(&self) -> u64 {
        let order = self
            .topological_order()
            .expect("graphs built here are acyclic");
        let mut longest = vec![0u64; self.num_tasks()];
        let mut best = 0;
        for &t in &order {
            let w = longest[t.index()] + self.tasks[t.index()].weight;
            best = best.max(w);
            for &s in self.successors(t) {
                longest[s.index()] = longest[s.index()].max(w);
            }
        }
        best
    }

    /// Replicates the graph `copies` times into one disjoint-union DAG:
    /// copy `i`'s task `t` becomes task `i·T + t` and its buffers shift
    /// by `i·B`. Scheduling a batch of independent evidence cases through
    /// one replicated graph exposes *inter-case* parallelism — exactly
    /// what small-table trees (the paper's `w=10, r=2` outlier) lack
    /// within a single case.
    ///
    /// The returned graph's [`TaskGraph::clique_buffer`] mapping refers to
    /// copy 0; copy `i`'s clique `c` lives at buffer
    /// `clique_buffer(c) + i · buffers_per_copy`.
    ///
    /// ```
    /// use evprop_bayesnet::networks;
    /// use evprop_jtree::JunctionTree;
    /// use evprop_taskgraph::TaskGraph;
    /// let jt = JunctionTree::from_network(&networks::asia()).unwrap();
    /// let g = TaskGraph::from_shape(jt.shape());
    /// let batch = g.replicate(4);
    /// assert_eq!(batch.num_tasks(), 4 * g.num_tasks());
    /// assert_eq!(batch.critical_path_weight(), g.critical_path_weight());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn replicate(&self, copies: usize) -> TaskGraph {
        assert!(copies > 0, "need at least one copy");
        let t = self.num_tasks();
        let b = self.buffers.len();
        let mut tasks = Vec::with_capacity(t * copies);
        let mut succ = Vec::with_capacity(t * copies);
        let mut pred_count = Vec::with_capacity(t * copies);
        let mut buffers = Vec::with_capacity(b * copies);
        for copy in 0..copies {
            let shift_buf = |id: BufferId| BufferId(id.index() + copy * b);
            for task in &self.tasks {
                let kind = match task.kind {
                    TaskKind::Marginalize { src, dst, max } => TaskKind::Marginalize {
                        src: shift_buf(src),
                        dst: shift_buf(dst),
                        max,
                    },
                    TaskKind::Divide { num, den, dst } => TaskKind::Divide {
                        num: shift_buf(num),
                        den: shift_buf(den),
                        dst: shift_buf(dst),
                    },
                    TaskKind::Extend { src, dst } => TaskKind::Extend {
                        src: shift_buf(src),
                        dst: shift_buf(dst),
                    },
                    TaskKind::Multiply { src, dst } => TaskKind::Multiply {
                        src: shift_buf(src),
                        dst: shift_buf(dst),
                    },
                };
                tasks.push(Task {
                    kind,
                    ..task.clone()
                });
            }
            for s in &self.succ {
                succ.push(s.iter().map(|x| TaskId(x.index() + copy * t)).collect());
            }
            pred_count.extend_from_slice(&self.pred_count);
            buffers.extend(self.buffers.iter().cloned());
        }
        TaskGraph {
            tasks,
            succ,
            pred_count,
            buffers,
            clique_buffers: self.clique_buffers.clone(),
            edge_buffers: self.edge_buffers.clone(),
            // Copies share domains, so the structurally interned plans
            // (and the plan ids stored on the copied tasks) carry over
            // unchanged.
            plans: self.plans.clone(),
        }
    }

    /// A topological order, or `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<TaskId>> {
        let n = self.num_tasks();
        let mut indeg = self.pred_count.clone();
        let mut queue: Vec<TaskId> = (0..n)
            .map(TaskId)
            .filter(|&t| indeg[t.index()] == 0)
            .collect();
        let mut out = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            out.push(t);
            for &s in self.successors(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// Levels for level-synchronous (OpenMP-style) execution: task `t` is
    /// in level `1 + max(level of predecessors)`.
    pub fn levels(&self) -> Vec<Vec<TaskId>> {
        let order = self
            .topological_order()
            .expect("graphs built here are acyclic");
        let mut level = vec![0usize; self.num_tasks()];
        let mut max_level = 0;
        for &t in &order {
            for &s in self.successors(t) {
                level[s.index()] = level[s.index()].max(level[t.index()] + 1);
                max_level = max_level.max(level[s.index()]);
            }
        }
        let mut out = vec![Vec::new(); max_level + 1];
        for t in (0..self.num_tasks()).map(TaskId) {
            out[level[t.index()]].push(t);
        }
        out
    }

    /// Structural validation: buffer ids in range, acyclicity, and every
    /// pair of writers to the same buffer ordered by a dependency path.
    ///
    /// O(V·E/64) via bitset reachability — meant for tests and debug
    /// assertions, not hot paths.
    ///
    /// # Errors
    ///
    /// See [`TaskGraphError`].
    pub fn validate(&self) -> Result<(), TaskGraphError> {
        let nb = self.buffers.len();
        for (i, t) in self.tasks.iter().enumerate() {
            let mut ids = t.kind.reads();
            ids.push(t.kind.dst());
            if ids.iter().any(|b| b.index() >= nb) {
                return Err(TaskGraphError::BadBuffer(TaskId(i)));
            }
        }
        let order = self.topological_order().ok_or(TaskGraphError::Cyclic)?;

        // reachability bitsets, processed in reverse topological order
        let n = self.num_tasks();
        let words = n.div_ceil(64);
        let mut reach = vec![0u64; n * words];
        let mut row = vec![0u64; words];
        for &t in order.iter().rev() {
            let ti = t.index();
            // set own bit
            reach[ti * words + ti / 64] |= 1 << (ti % 64);
            for s in self.successors(t).iter().map(|s| s.index()) {
                row.copy_from_slice(&reach[s * words..(s + 1) * words]);
                for (d, &v) in reach[ti * words..(ti + 1) * words].iter_mut().zip(&row) {
                    *d |= v;
                }
            }
        }
        // group writers per buffer
        let mut writers: Vec<Vec<TaskId>> = vec![Vec::new(); nb];
        for (i, t) in self.tasks.iter().enumerate() {
            writers[t.kind.dst().index()].push(TaskId(i));
        }
        for ws in &writers {
            for (x, &a) in ws.iter().enumerate() {
                for &b in &ws[x + 1..] {
                    let (ai, bi) = (a.index(), b.index());
                    let a_reaches_b = reach[ai * words + bi / 64] >> (bi % 64) & 1 == 1;
                    let b_reaches_a = reach[bi * words + ai / 64] >> (ai % 64) & 1 == 1;
                    if !a_reaches_b && !b_reaches_a {
                        return Err(TaskGraphError::UnorderedWriters(a, b));
                    }
                }
            }
        }
        Ok(())
    }
}
