//! Task definition and dependency-graph construction (§5 of the paper).
//!
//! Evidence propagation over a junction tree decomposes into *tasks*, one
//! per node-level primitive execution. This crate turns a
//! [`TreeShape`](evprop_jtree::TreeShape) into the global task DAG the
//! schedulers run:
//!
//! 1. the **clique updating graph** (Fig. 2a) — two symmetric phases:
//!    collect (each clique depends on its children) and distribute (each
//!    clique depends on its parent);
//! 2. each clique update expands into a **local task dependency graph**
//!    (Fig. 2b/c): `Marginalize → Divide → Extend → Multiply` along every
//!    edge, with multiplications into the same clique serialized.
//!
//! Tasks read and write *buffers* (clique potentials, separators, ratio
//! and extension scratch); the graph carries [`BufferSpec`]s so any
//! engine — real threads or the discrete-event simulator — can allocate
//! and drive them.
//!
//! # Example
//!
//! ```
//! use evprop_bayesnet::networks;
//! use evprop_jtree::JunctionTree;
//! use evprop_taskgraph::TaskGraph;
//!
//! let jt = JunctionTree::from_network(&networks::asia()).unwrap();
//! let g = TaskGraph::from_shape(jt.shape());
//! assert_eq!(g.num_tasks(), 8 * (jt.num_cliques() - 1));
//! g.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod build;
mod dot;
mod execute;
mod graph;
mod plan_cache;
mod slice;

pub use build::MESSAGE_TASKS_PER_EDGE;
pub use execute::{execute_full, execute_range, write_and_read};
pub use graph::{
    BufferId, BufferInit, BufferSpec, DownBuffers, EdgeBuffers, Phase, PropagationMode, Task,
    TaskGraph, TaskGraphError, TaskId, TaskKind,
};
pub use plan_cache::{PlanCache, PlanCacheStats, PlanId};
pub use slice::{EdgeUpdate, SlicePlan};
