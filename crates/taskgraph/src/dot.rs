//! Graphviz export of task graphs for inspection and documentation.

use crate::graph::{Phase, TaskGraph, TaskId};
use std::fmt::Write as _;

impl TaskGraph {
    /// Renders the task DAG in Graphviz DOT syntax: one node per task
    /// labeled `primitive@clique (weight)`, collect-phase tasks in the
    /// upper cluster, distribute-phase in the lower, dependency edges
    /// between them.
    ///
    /// ```sh
    /// dot -Tsvg graph.dot -o graph.svg
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph tasks {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
        for phase in [Phase::Collect, Phase::Distribute] {
            let _ = writeln!(
                out,
                "  subgraph cluster_{} {{\n    label=\"{}\";",
                if phase == Phase::Collect {
                    "collect"
                } else {
                    "distribute"
                },
                if phase == Phase::Collect {
                    "collect (leaves to root)"
                } else {
                    "distribute (root to leaves)"
                },
            );
            for (i, t) in self.tasks.iter().enumerate() {
                if t.phase == phase {
                    let _ = writeln!(
                        out,
                        "    t{} [label=\"{}@{} ({})\"];",
                        i,
                        t.kind.primitive(),
                        t.clique,
                        t.weight
                    );
                }
            }
            let _ = writeln!(out, "  }}");
        }
        for i in 0..self.num_tasks() {
            for s in self.successors(TaskId(i)) {
                let _ = writeln!(out, "  t{} -> t{};", i, s.index());
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::TaskGraph;
    use evprop_jtree::TreeShape;
    use evprop_potential::{Domain, VarId, Variable};

    #[test]
    fn dot_contains_every_task_and_edge() {
        let d0 = Domain::new(vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))]).unwrap();
        let d1 = Domain::new(vec![Variable::binary(VarId(1)), Variable::binary(VarId(2))]).unwrap();
        let shape = TreeShape::new(vec![d0, d1], &[(0, 1)], 0).unwrap();
        let g = TaskGraph::from_shape(&shape);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph tasks {"));
        for i in 0..g.num_tasks() {
            assert!(dot.contains(&format!("t{i} [label=")), "node t{i} missing");
        }
        let edges: usize = dot.matches(" -> ").count();
        let expected: usize = (0..g.num_tasks())
            .map(|i| g.successors(crate::TaskId(i)).len())
            .sum();
        assert_eq!(edges, expected);
        assert!(dot.contains("cluster_collect"));
        assert!(dot.contains("cluster_distribute"));
        assert!(dot.contains("marg@"));
    }
}
