//! Construction of the global task DAG from a tree shape (§5.2).

use crate::graph::{
    BufferId, BufferInit, BufferSpec, DownBuffers, EdgeBuffers, Phase, PropagationMode, Task,
    TaskGraph, TaskId, TaskKind,
};
use crate::plan_cache::PlanCache;
use evprop_jtree::{CliqueId, TreeShape};
use evprop_potential::EntryRange;

/// Each junction-tree edge expands into 8 tasks: the 4-primitive chain of
/// the collect message plus the 4-primitive chain of the distribute
/// message (Fig. 2b/c).
pub const MESSAGE_TASKS_PER_EDGE: usize = 8;

impl TaskGraph {
    /// Builds the task dependency graph for two-phase evidence propagation
    /// over `shape`, following §5.2: the clique updating graph (collect
    /// phase depending on children, distribute phase on the parent),
    /// refined by the per-edge local task chains
    /// `Marginalize → Divide → Extend → Multiply`. Multiplications into
    /// the same clique are serialized (they share a destination table);
    /// everything else runs as parallel as the tree allows.
    ///
    /// A single-clique tree yields an empty graph — propagation is a
    /// no-op.
    pub fn from_shape(shape: &TreeShape) -> TaskGraph {
        Self::from_shape_mode(shape, PropagationMode::SumProduct)
    }

    /// Like [`TaskGraph::from_shape`], but selecting the algebra: with
    /// [`PropagationMode::MaxProduct`] the marginalization tasks maximize
    /// instead of summing, producing the max-calibrated tree used for
    /// most-probable-explanation queries. The graph structure, weights
    /// and dependencies are identical in both modes.
    pub fn from_shape_mode(shape: &TreeShape, mode: PropagationMode) -> TaskGraph {
        Self::build(shape, mode, true)
    }

    /// Builds only the **collect phase** toward the shape's current root:
    /// after execution the root clique is fully calibrated (it holds
    /// `P(C_root, e)`), while every other clique is not. Answering a
    /// single in-clique query this way costs half the propagation work of
    /// the full two-phase schedule — re-root the shape at a clique
    /// covering the query first.
    pub fn collect_only(shape: &TreeShape, mode: PropagationMode) -> TaskGraph {
        Self::build(shape, mode, false)
    }

    fn build(shape: &TreeShape, mode: PropagationMode, include_distribute: bool) -> TaskGraph {
        let max = mode == PropagationMode::MaxProduct;
        let n = shape.num_cliques();
        let mut g = TaskGraph {
            tasks: Vec::with_capacity(MESSAGE_TASKS_PER_EDGE * n.saturating_sub(1)),
            succ: Vec::new(),
            pred_count: Vec::new(),
            buffers: Vec::with_capacity(n * 8),
            clique_buffers: Vec::with_capacity(n),
            edge_buffers: vec![None; n],
            plans: PlanCache::new(),
        };

        // clique potentials occupy buffers 0..n
        for c in (0..n).map(CliqueId) {
            let b = g.push_buffer(BufferSpec {
                domain: shape.domain(c).clone(),
                init: BufferInit::CliquePotential(c),
            });
            g.clique_buffers.push(b);
        }

        // per-edge scratch buffers
        let mut edge_bufs: Vec<Option<EdgeBuffers>> = vec![None; n];
        for c in (0..n).map(CliqueId) {
            let Some(p) = shape.parent(c) else { continue };
            let sep = shape.parent_separator(c).clone();
            let eb = EdgeBuffers {
                sep_old: g.push_buffer(BufferSpec {
                    domain: sep.clone(),
                    init: BufferInit::Ones,
                }),
                sep_up: g.push_buffer(BufferSpec {
                    domain: sep.clone(),
                    init: BufferInit::Zeros,
                }),
                ratio_up: g.push_buffer(BufferSpec {
                    domain: sep.clone(),
                    init: BufferInit::Zeros,
                }),
                ext_up: g.push_buffer(BufferSpec {
                    domain: shape.domain(p).clone(),
                    init: BufferInit::Zeros,
                }),
                down: include_distribute.then(|| DownBuffers {
                    sep_down: g.push_buffer(BufferSpec {
                        domain: sep.clone(),
                        init: BufferInit::Zeros,
                    }),
                    ratio_down: g.push_buffer(BufferSpec {
                        domain: sep.clone(),
                        init: BufferInit::Zeros,
                    }),
                    ext_down: g.push_buffer(BufferSpec {
                        domain: shape.domain(c).clone(),
                        init: BufferInit::Zeros,
                    }),
                }),
            };
            edge_bufs[c.index()] = Some(eb);
        }
        g.edge_buffers = edge_bufs.clone();

        // ---------------- collect phase (postorder) ----------------
        // mul_up_chain[p] = last collect Multiply writing clique p
        let mut mul_up_chain: Vec<Option<TaskId>> = vec![None; n];
        // mul_up_all[x] = every collect Multiply into clique x (the
        // clique-updating-graph "depends on all children" edge set)
        let mut marg_up_of: Vec<Option<TaskId>> = vec![None; n];
        let mut mul_up_of: Vec<Option<TaskId>> = vec![None; n];
        for &c in &shape.postorder() {
            let Some(p) = shape.parent(c) else { continue };
            let eb = edge_bufs[c.index()].expect("non-root cliques have edge buffers");
            let sep_len = g.buffers[eb.sep_up.index()].domain.size() as u64;
            let sep_dom = shape.parent_separator(c);
            let clique_dom = shape.domain(c);
            let parent_dom = shape.domain(p);

            // Compile-once index maps for this edge's collect chain.
            // Extension and the distribute-phase marginalization of the
            // reverse message share these interned plans.
            let marg_plan = g
                .plans
                .intern(clique_dom, sep_dom, EntryRange::full(clique_dom.size()))
                .expect("separator domain nests in clique domain");
            let ext_plan = g
                .plans
                .intern(parent_dom, sep_dom, EntryRange::full(parent_dom.size()))
                .expect("separator domain nests in parent domain");
            let mul_plan = g
                .plans
                .intern(parent_dom, parent_dom, EntryRange::full(parent_dom.size()))
                .expect("a domain nests in itself");

            let marg = g.push_task(
                Task {
                    kind: TaskKind::Marginalize {
                        src: g.clique_buffers[c.index()],
                        dst: eb.sep_up,
                        max,
                    },
                    // == the interned plan's ops(): one op per scan
                    // entry, without forcing compilation at build time
                    weight: clique_dom.size() as u64,
                    phase: Phase::Collect,
                    clique: c,
                    plan: Some(marg_plan),
                },
                // clique c is ready once every child's collect message
                // has been multiplied in
                shape
                    .children(c)
                    .iter()
                    .map(|ch| mul_up_of[ch.index()].expect("children processed first"))
                    .collect(),
            );
            marg_up_of[c.index()] = Some(marg);

            let div = g.push_task(
                Task {
                    kind: TaskKind::Divide {
                        num: eb.sep_up,
                        den: eb.sep_old,
                        dst: eb.ratio_up,
                    },
                    weight: sep_len,
                    phase: Phase::Collect,
                    clique: c,
                    plan: None,
                },
                vec![marg],
            );

            let ext = g.push_task(
                Task {
                    kind: TaskKind::Extend {
                        src: eb.ratio_up,
                        dst: eb.ext_up,
                    },
                    weight: parent_dom.size() as u64,
                    phase: Phase::Collect,
                    clique: p,
                    plan: Some(ext_plan),
                },
                vec![div],
            );

            // serialize with the previous multiply into the parent
            let mut deps = vec![ext];
            if let Some(prev) = mul_up_chain[p.index()] {
                deps.push(prev);
            }
            let mul = g.push_task(
                Task {
                    kind: TaskKind::Multiply {
                        src: eb.ext_up,
                        dst: g.clique_buffers[p.index()],
                    },
                    weight: parent_dom.size() as u64,
                    phase: Phase::Collect,
                    clique: p,
                    plan: Some(mul_plan),
                },
                deps,
            );
            mul_up_chain[p.index()] = Some(mul);
            mul_up_of[c.index()] = Some(mul);
        }

        // ---------------- distribute phase (preorder) ----------------
        let mut mul_down_of: Vec<Option<TaskId>> = vec![None; n];
        let distribute_cliques: &[evprop_jtree::CliqueId] = if include_distribute {
            shape.preorder()
        } else {
            &[]
        };
        for &c in distribute_cliques.iter() {
            let Some(p) = shape.parent(c) else { continue };
            let eb = edge_bufs[c.index()].expect("non-root cliques have edge buffers");
            let down = eb.down.expect("distribute graphs allocate down buffers");
            let sep_len = g.buffers[down.sep_down.index()].domain.size() as u64;
            let sep_dom = shape.parent_separator(c);
            let clique_dom = shape.domain(c);
            let parent_dom = shape.domain(p);

            // The distribute chain's index maps mirror the collect
            // chain's, so these interns are structural cache hits
            // except for the child-side identity multiply.
            let marg_plan = g
                .plans
                .intern(parent_dom, sep_dom, EntryRange::full(parent_dom.size()))
                .expect("separator domain nests in parent domain");
            let ext_plan = g
                .plans
                .intern(clique_dom, sep_dom, EntryRange::full(clique_dom.size()))
                .expect("separator domain nests in clique domain");
            let mul_plan = g
                .plans
                .intern(clique_dom, clique_dom, EntryRange::full(clique_dom.size()))
                .expect("a domain nests in itself");

            // The parent is fully updated once (a) its last collect
            // multiply finished — `mul_up_chain[p]` transitively orders
            // all of them — and (b) its own distribute multiply finished
            // (absent for the root).
            let mut deps = vec![mul_up_chain[p.index()]
                .expect("p has at least child c, so a collect multiply exists")];
            if let Some(md) = mul_down_of[p.index()] {
                deps.push(md);
            }
            let marg = g.push_task(
                Task {
                    kind: TaskKind::Marginalize {
                        src: g.clique_buffers[p.index()],
                        dst: down.sep_down,
                        max,
                    },
                    weight: parent_dom.size() as u64,
                    phase: Phase::Distribute,
                    clique: p,
                    plan: Some(marg_plan),
                },
                deps,
            );

            // ψ**_S / ψ*_S — the denominator is the collect-phase
            // separator, whose writer (MARG_up of c) precedes this task
            // through mul_up_chain[p].
            let div = g.push_task(
                Task {
                    kind: TaskKind::Divide {
                        num: down.sep_down,
                        den: eb.sep_up,
                        dst: down.ratio_down,
                    },
                    weight: sep_len,
                    phase: Phase::Distribute,
                    clique: c,
                    plan: None,
                },
                vec![marg],
            );

            let ext = g.push_task(
                Task {
                    kind: TaskKind::Extend {
                        src: down.ratio_down,
                        dst: down.ext_down,
                    },
                    weight: clique_dom.size() as u64,
                    phase: Phase::Distribute,
                    clique: c,
                    plan: Some(ext_plan),
                },
                vec![div],
            );

            // Writes clique c; prior writers (collect multiplies into c)
            // and readers (MARG_up of c) are ordered before this task
            // through the dependency chain — see the crate docs' safety
            // argument and `TaskGraph::validate`.
            let mul = g.push_task(
                Task {
                    kind: TaskKind::Multiply {
                        src: down.ext_down,
                        dst: g.clique_buffers[c.index()],
                    },
                    weight: clique_dom.size() as u64,
                    phase: Phase::Distribute,
                    clique: c,
                    plan: Some(mul_plan),
                },
                vec![ext],
            );
            mul_down_of[c.index()] = Some(mul);
        }

        debug_assert!(g.validate().is_ok(), "builder produced an invalid graph");
        g
    }

    fn push_buffer(&mut self, spec: BufferSpec) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(spec);
        id
    }

    fn push_task(&mut self, task: Task, deps: Vec<TaskId>) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        self.succ.push(Vec::new());
        self.pred_count.push(deps.len() as u32);
        for d in deps {
            self.succ[d.index()].push(id);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_potential::{Domain, PrimitiveKind, VarId, Variable};

    fn dom(ids: &[u32]) -> Domain {
        Domain::new(ids.iter().map(|&i| Variable::binary(VarId(i))).collect()).unwrap()
    }

    fn path(n: usize) -> TreeShape {
        // C_i = {i, i+1}
        let domains: Vec<Domain> = (0..n).map(|i| dom(&[i as u32, i as u32 + 1])).collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        TreeShape::new(domains, &edges, 0).unwrap()
    }

    fn star(k: usize) -> TreeShape {
        // center {0..k}, leaf i = {i}
        let mut domains =
            vec![Domain::new((0..k as u32).map(|i| Variable::binary(VarId(i))).collect()).unwrap()];
        for i in 0..k as u32 {
            domains.push(dom(&[i]));
        }
        let edges: Vec<(usize, usize)> = (1..=k).map(|i| (0, i)).collect();
        TreeShape::new(domains, &edges, 0).unwrap()
    }

    #[test]
    fn counts_match_formula() {
        for n in [2, 3, 5, 9] {
            let g = TaskGraph::from_shape(&path(n));
            assert_eq!(g.num_tasks(), MESSAGE_TASKS_PER_EDGE * (n - 1));
            g.validate().unwrap();
        }
    }

    #[test]
    fn single_clique_graph_is_empty() {
        let g = TaskGraph::from_shape(&path(1));
        assert_eq!(g.num_tasks(), 0);
        assert_eq!(g.initial_ready().len(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn leaves_start_ready() {
        let g = TaskGraph::from_shape(&star(4));
        // collect MARG of each leaf is dependency-free
        let ready = g.initial_ready();
        assert_eq!(ready.len(), 4);
        for t in ready {
            assert_eq!(g.task(t).phase, Phase::Collect);
            assert_eq!(g.task(t).kind.primitive(), PrimitiveKind::Marginalize);
        }
    }

    #[test]
    fn multiplies_into_shared_clique_serialize() {
        let g = TaskGraph::from_shape(&star(4));
        // collect multiplications all write buffer 0 (center clique);
        // validate() already checks ordering, but assert the chain length
        let muls: Vec<TaskId> = (0..g.num_tasks())
            .map(TaskId)
            .filter(|&t| {
                g.task(t).phase == Phase::Collect
                    && g.task(t).kind.primitive() == PrimitiveKind::Multiply
            })
            .collect();
        assert_eq!(muls.len(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn critical_path_le_total() {
        let g = TaskGraph::from_shape(&path(6));
        assert!(g.critical_path_weight() <= g.total_weight());
        assert!(g.critical_path_weight() > 0);
    }

    #[test]
    fn star_has_more_parallelism_than_path() {
        // same number of edges → same total tasks, but the star's
        // critical path is far shorter relative to total work
        let gp = TaskGraph::from_shape(&path(9));
        let gs = TaskGraph::from_shape(&star(8));
        let par_p = gp.total_weight() as f64 / gp.critical_path_weight() as f64;
        let par_s = gs.total_weight() as f64 / gs.critical_path_weight() as f64;
        assert!(par_s > par_p);
    }

    #[test]
    fn levels_partition_all_tasks() {
        let g = TaskGraph::from_shape(&path(5));
        let levels = g.levels();
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_tasks());
        // within a level no task depends on another of the same level
        for level in &levels {
            for &t in level {
                for &s in g.successors(t) {
                    assert!(!level.contains(&s));
                }
            }
        }
    }

    #[test]
    fn phases_are_ordered_per_clique_pair() {
        let g = TaskGraph::from_shape(&path(4));
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_tasks()];
            for (i, t) in order.iter().enumerate() {
                p[t.index()] = i;
            }
            p
        };
        // every collect multiply into the root precedes every distribute
        // marginalize out of the root
        for a in (0..g.num_tasks()).map(TaskId) {
            for b in (0..g.num_tasks()).map(TaskId) {
                let (ta, tb) = (g.task(a), g.task(b));
                if ta.phase == Phase::Collect
                    && tb.phase == Phase::Distribute
                    && ta.kind.dst() == BufferId(0)
                    && matches!(tb.kind, TaskKind::Marginalize { src, .. } if src == BufferId(0))
                {
                    assert!(pos[a.index()] < pos[b.index()]);
                }
            }
        }
    }

    #[test]
    fn weights_derive_from_plan_op_counts() {
        let g = TaskGraph::from_shape(&path(3));
        for (i, t) in g.tasks().iter().enumerate() {
            match t.plan {
                // Cross-domain tasks: weight is the compiled plan's
                // inner-loop op count, which equals the partitionable
                // table's length (so cost calibrations are unchanged).
                Some(id) => {
                    assert_eq!(t.weight, g.plans().get(id).ops());
                    assert_eq!(t.weight, g.partition_len(TaskId(i)) as u64);
                }
                // Divide has no cross-domain plan: separator length.
                None => {
                    assert_eq!(t.kind.primitive(), evprop_potential::PrimitiveKind::Divide);
                    assert_eq!(
                        t.weight,
                        g.buffers()[t.kind.dst().index()].domain.size() as u64
                    );
                }
            }
            match t.kind {
                TaskKind::Marginalize { src, .. } => {
                    assert_eq!(t.weight, g.buffers()[src.index()].domain.size() as u64)
                }
                _ => assert_eq!(
                    t.weight,
                    g.buffers()[t.kind.dst().index()].domain.size() as u64
                ),
            }
        }
    }

    #[test]
    fn plans_are_structurally_shared() {
        // 8 tasks per edge, 6 of them planful (2 divides are not), but
        // the collect marg / distribute ext of an edge share a plan, as
        // do the collect ext / distribute marg — so a path graph
        // interns 3-4 distinct plans per edge, not 6.
        let g = TaskGraph::from_shape(&path(3));
        let planful = g.tasks().iter().filter(|t| t.plan.is_some()).count();
        assert_eq!(planful, 12);
        assert!(
            g.plans().len() < planful,
            "interning should dedup: {} plans for {} planful tasks",
            g.plans().len(),
            planful
        );
        // Collect marginalize (clique→sep) and distribute extend
        // (sep→clique over the same pair) share one interned plan.
        let mut by_prim: Vec<Vec<crate::PlanId>> = vec![Vec::new(); 4];
        for t in g.tasks() {
            if let Some(id) = t.plan {
                by_prim[t.kind.primitive() as usize].push(id);
            }
        }
        let margs = &by_prim[evprop_potential::PrimitiveKind::Marginalize as usize];
        let exts = &by_prim[evprop_potential::PrimitiveKind::Extend as usize];
        assert!(margs.iter().any(|id| exts.contains(id)));
    }

    #[test]
    fn replicated_graphs_share_plan_ids() {
        let g = TaskGraph::from_shape(&path(3));
        let batch = g.replicate(3);
        assert_eq!(batch.plans().len(), g.plans().len());
        for copy in 0..3 {
            for (t, orig) in batch.tasks()[copy * g.num_tasks()..(copy + 1) * g.num_tasks()]
                .iter()
                .zip(g.tasks())
            {
                assert_eq!(t.plan, orig.plan);
                assert_eq!(t.weight, orig.weight);
            }
        }
    }

    #[test]
    fn buffer_inits_are_sane() {
        let g = TaskGraph::from_shape(&path(3));
        let n_ones = g
            .buffers()
            .iter()
            .filter(|b| b.init == BufferInit::Ones)
            .count();
        assert_eq!(n_ones, 2); // one sep_old per edge
        let n_clique = g
            .buffers()
            .iter()
            .filter(|b| matches!(b.init, BufferInit::CliquePotential(_)))
            .count();
        assert_eq!(n_clique, 3);
    }
}

#[cfg(test)]
mod collect_only_tests {
    use super::*;
    use crate::graph::PropagationMode;
    use evprop_potential::{Domain, VarId, Variable};

    fn chain_shape(n: usize) -> TreeShape {
        let domains: Vec<Domain> = (0..n)
            .map(|i| {
                Domain::new(vec![
                    Variable::binary(VarId(i as u32)),
                    Variable::binary(VarId(i as u32 + 1)),
                ])
                .unwrap()
            })
            .collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        TreeShape::new(domains, &edges, 0).unwrap()
    }

    #[test]
    fn collect_only_has_half_the_tasks() {
        let shape = chain_shape(6);
        let full = TaskGraph::from_shape(&shape);
        let half = TaskGraph::collect_only(&shape, PropagationMode::SumProduct);
        assert_eq!(half.num_tasks() * 2, full.num_tasks());
        half.validate().unwrap();
        assert!(half.buffers().len() < full.buffers().len());
        // every task is a collect-phase task
        assert!(half.tasks().iter().all(|t| t.phase == Phase::Collect));
    }

    #[test]
    fn collect_only_single_clique_is_empty() {
        let shape = chain_shape(1);
        let g = TaskGraph::collect_only(&shape, PropagationMode::SumProduct);
        assert_eq!(g.num_tasks(), 0);
    }
}
