//! Executing task kinds against a buffer arena.
//!
//! Shared by the sequential reference engine and by tests; the parallel
//! scheduler executes the same primitives through its own arena (see
//! `evprop-sched`), so correctness proved here transfers.

use crate::graph::TaskKind;
use evprop_potential::{EntryRange, PotentialTable};

/// Splits the arena into one mutable table (the task's destination) and
/// shared references to the others.
///
/// # Panics
///
/// Panics if `w` collides with any element of `reads` or any index is out
/// of bounds — both indicate a malformed task graph.
pub fn write_and_read<'a>(
    arena: &'a mut [PotentialTable],
    w: usize,
    reads: &[usize],
) -> (&'a mut PotentialTable, Vec<&'a PotentialTable>) {
    assert!(w < arena.len(), "write index out of bounds");
    for &r in reads {
        assert!(r < arena.len(), "read index out of bounds");
        assert_ne!(r, w, "task reads its own destination exclusively");
    }
    // SAFETY: `w` is disjoint from every element of `reads` (asserted
    // above), so one `&mut` plus shared refs to *other* slots never
    // alias. Duplicate read indices are fine (shared refs may alias each
    // other).
    let base = arena.as_mut_ptr();
    let dst = unsafe { &mut *base.add(w) };
    let srcs = reads
        .iter()
        .map(|&r| unsafe { &*(base.add(r) as *const PotentialTable) })
        .collect();
    (dst, srcs)
}

/// Executes a whole task against the arena.
///
/// * `Marginalize` zeroes its destination, then accumulates.
/// * `Divide` copies the numerator into the destination, then divides by
///   the denominator elementwise (`0/0 = 0`).
/// * `Extend` overwrites the destination with the replicated source.
/// * `Multiply` multiplies the destination by the source elementwise.
///
/// # Panics
///
/// Panics on malformed graphs (aliasing or domain mismatches), which
/// `TaskGraph::validate` rules out.
pub fn execute_full(kind: &TaskKind, arena: &mut [PotentialTable]) {
    match *kind {
        TaskKind::Marginalize { src, dst, max } => {
            let (d, s) = write_and_read(arena, dst.index(), &[src.index()]);
            d.fill(0.0);
            let range = EntryRange::full(s[0].len());
            if max {
                s[0].max_marginalize_range_into(range, d)
                    .expect("separator domain nests in clique domain");
            } else {
                s[0].marginalize_range_into(range, d)
                    .expect("separator domain nests in clique domain");
            }
        }
        TaskKind::Divide { num, den, dst } => {
            let (d, s) = write_and_read(arena, dst.index(), &[num.index(), den.index()]);
            d.data_mut().copy_from_slice(s[0].data());
            d.divide_assign(s[1]).expect("separator domains agree");
        }
        TaskKind::Extend { src, dst } => {
            let (d, s) = write_and_read(arena, dst.index(), &[src.index()]);
            s[0].extend_range_into(EntryRange::full(d.len()), d)
                .expect("separator domain nests in clique domain");
        }
        TaskKind::Multiply { src, dst } => {
            let (d, s) = write_and_read(arena, dst.index(), &[src.index()]);
            d.multiply_assign(s[0])
                .expect("extended ratio matches clique domain");
        }
    }
}

/// Executes the destination-partitioned slice `range` of a `Divide`,
/// `Extend` or `Multiply` task (their disjoint destination ranges
/// concatenate to the whole result). `Marginalize` is *source*-
/// partitioned and needs private partial tables — the scheduler handles
/// it specially — so passing one here panics.
///
/// # Panics
///
/// Panics for `Marginalize` tasks and on malformed graphs.
pub fn execute_range(kind: &TaskKind, range: EntryRange, arena: &mut [PotentialTable]) {
    match *kind {
        TaskKind::Marginalize { .. } => {
            panic!("marginalization is source-partitioned; use private partials")
        }
        TaskKind::Divide { num, den, dst } => {
            let (d, s) = write_and_read(arena, dst.index(), &[num.index(), den.index()]);
            d.data_mut()[range.start..range.end]
                .copy_from_slice(&s[0].data()[range.start..range.end]);
            d.divide_assign_range(range, s[1])
                .expect("separator domains agree");
        }
        TaskKind::Extend { src, dst } => {
            let (d, s) = write_and_read(arena, dst.index(), &[src.index()]);
            s[0].extend_range_into(range, d)
                .expect("separator domain nests in clique domain");
        }
        TaskKind::Multiply { src, dst } => {
            let (d, s) = write_and_read(arena, dst.index(), &[src.index()]);
            d.multiply_assign_range(range, s[0])
                .expect("extended ratio matches clique domain");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BufferId;
    use evprop_potential::{Domain, VarId, Variable};

    fn dom(ids: &[u32]) -> Domain {
        Domain::new(ids.iter().map(|&i| Variable::binary(VarId(i))).collect()).unwrap()
    }

    fn arena() -> Vec<PotentialTable> {
        vec![
            PotentialTable::from_data(dom(&[0, 1]), vec![1., 2., 3., 4.]).unwrap(), // 0 clique
            PotentialTable::from_data(dom(&[1]), vec![5., 6.]).unwrap(),            // 1 sep num
            PotentialTable::from_data(dom(&[1]), vec![2., 3.]).unwrap(),            // 2 sep den
            PotentialTable::zeros(dom(&[1])),                                       // 3 sep dst
            PotentialTable::zeros(dom(&[0, 1])),                                    // 4 ext dst
        ]
    }

    #[test]
    fn full_marginalize() {
        let mut a = arena();
        execute_full(
            &TaskKind::Marginalize {
                src: BufferId(0),
                dst: BufferId(3),
                max: false,
            },
            &mut a,
        );
        assert_eq!(a[3].data(), &[4., 6.]);
        // re-running is idempotent thanks to the zeroing
        execute_full(
            &TaskKind::Marginalize {
                src: BufferId(0),
                dst: BufferId(3),
                max: false,
            },
            &mut a,
        );
        assert_eq!(a[3].data(), &[4., 6.]);
        // max mode takes maxima instead of sums
        execute_full(
            &TaskKind::Marginalize {
                src: BufferId(0),
                dst: BufferId(3),
                max: true,
            },
            &mut a,
        );
        assert_eq!(a[3].data(), &[3., 4.]);
    }

    #[test]
    fn full_divide() {
        let mut a = arena();
        execute_full(
            &TaskKind::Divide {
                num: BufferId(1),
                den: BufferId(2),
                dst: BufferId(3),
            },
            &mut a,
        );
        assert_eq!(a[3].data(), &[2.5, 2.0]);
        // numerator untouched
        assert_eq!(a[1].data(), &[5., 6.]);
    }

    #[test]
    fn full_extend_and_multiply() {
        let mut a = arena();
        execute_full(
            &TaskKind::Extend {
                src: BufferId(1),
                dst: BufferId(4),
            },
            &mut a,
        );
        assert_eq!(a[4].data(), &[5., 6., 5., 6.]);
        execute_full(
            &TaskKind::Multiply {
                src: BufferId(4),
                dst: BufferId(0),
            },
            &mut a,
        );
        assert_eq!(a[0].data(), &[5., 12., 15., 24.]);
    }

    #[test]
    fn ranged_matches_full() {
        for kind in [
            TaskKind::Divide {
                num: BufferId(1),
                den: BufferId(2),
                dst: BufferId(3),
            },
            TaskKind::Extend {
                src: BufferId(1),
                dst: BufferId(4),
            },
            TaskKind::Multiply {
                src: BufferId(4),
                dst: BufferId(0),
            },
        ] {
            let mut whole = arena();
            // pre-fill ext buffer so Multiply has a meaningful source
            execute_full(
                &TaskKind::Extend {
                    src: BufferId(1),
                    dst: BufferId(4),
                },
                &mut whole,
            );
            let mut pieced = whole.clone();
            execute_full(&kind, &mut whole);
            let len = whole[kind.dst().index()].len();
            for r in EntryRange::split(len, 1) {
                execute_range(&kind, r, &mut pieced);
            }
            assert_eq!(
                pieced[kind.dst().index()].data(),
                whole[kind.dst().index()].data()
            );
        }
    }

    #[test]
    #[should_panic(expected = "destination")]
    fn aliasing_panics() {
        let mut a = arena();
        let _ = write_and_read(&mut a, 0, &[0]);
    }

    #[test]
    #[should_panic(expected = "source-partitioned")]
    fn ranged_marginalize_panics() {
        let mut a = arena();
        execute_range(
            &TaskKind::Marginalize {
                src: BufferId(0),
                dst: BufferId(3),
                max: false,
            },
            EntryRange { start: 0, end: 1 },
            &mut a,
        );
    }
}
