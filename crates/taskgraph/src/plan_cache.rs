//! Interning and lazy compilation of [`KernelPlan`]s.
//!
//! The task-graph builder *interns* one full-range plan shape per
//! cross-domain task: two tasks whose (scan-domain, target-domain,
//! entry-range) triples coincide share one entry. That sharing is
//! substantial in practice — the collect marginalization out of a
//! clique, the distribute extension into it and the distribute
//! multiplication into it all use the same (clique, separator) index
//! map, as do all replicas of a
//! [`replicate`](crate::TaskGraph::replicate)d graph.
//!
//! Interning only *registers and validates* a shape — `O(width)`.
//! The plan program itself (the run-length segment list, `O(size /
//! block)` time and memory) is compiled **on first dereference**
//! through [`PlanCache::get`] and cached in the entry thereafter.
//! Keeping graph construction free of per-entry work matters: the
//! simulator builds task graphs for clique tables it never
//! materializes (3¹⁵-entry presets), and a serving model only ever
//! executes the plans its query mix actually touches.
//!
//! The scheduler's Partition module additionally needs plans for
//! δ-sized *subranges*, which are unknown until run time (δ lives in
//! the scheduler's configuration, not the graph). Those are interned
//! on first use through [`PlanCache::for_task_range`] and memoized by
//! `(task, range)`, so a steady-state serving workload registers each
//! subrange plan exactly once and then hits the memo on every query.
//! The hit/miss/interned counters back the serve runtime's plan-cache
//! observability.

use crate::graph::TaskId;
use evprop_potential::plan::KernelPlan;
use evprop_potential::{Domain, EntryRange, PotentialError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Index of an interned plan in a [`PlanCache`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanId(pub u32);

impl PlanId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Ranged lookups answered from the `(task, range)` memo.
    pub hits: u64,
    /// Ranged lookups that had to intern (or at least re-key) a plan.
    pub misses: u64,
    /// Distinct plans interned (structural dedup already applied).
    pub interned: u64,
}

impl PlanCacheStats {
    /// Adds another snapshot counter-wise (for aggregating the
    /// sum-product and max-product graphs of one model).
    pub fn merged(self, other: PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            interned: self.interned + other.interned,
        }
    }
}

/// One interned shape and its lazily compiled program. Entries are
/// immutable once registered; `compiled` fills in exactly once, under
/// [`OnceLock`], on the first thread that dereferences the plan.
struct PlanEntry {
    scan: Domain,
    target: Domain,
    range: EntryRange,
    compiled: OnceLock<Arc<KernelPlan>>,
}

#[derive(Default)]
struct Inner {
    plans: Vec<Arc<PlanEntry>>,
    /// Structural interning: (scan, target, range) → plan.
    by_shape: HashMap<(Domain, Domain, EntryRange), PlanId>,
    /// Runtime memo for δ-partitioned subranges.
    by_task_range: HashMap<(TaskId, EntryRange), PlanId>,
}

/// Interned [`KernelPlan`] store owned by a
/// [`TaskGraph`](crate::TaskGraph). Shared references are `Sync`: the
/// scheduler's workers intern lazily through an internal lock while
/// queries are in flight.
pub struct PlanCache {
    inner: RwLock<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            inner: RwLock::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Interns the shape `(scan, target, range)`, validating it but
    /// **not** compiling the program — that happens on the first
    /// [`get`](Self::get). Structurally identical requests return the
    /// same [`PlanId`]. Not counted as a hit or miss — this is the
    /// builder's entry point, not the runtime lookup.
    ///
    /// # Errors
    ///
    /// The same shape errors [`KernelPlan::compile`] reports:
    /// [`PotentialError::NotSubdomain`] if `target` ⊄ `scan`,
    /// [`PotentialError::BadRange`] if `range` exceeds `scan`.
    pub fn intern(&self, scan: &Domain, target: &Domain, range: EntryRange) -> Result<PlanId> {
        let key = (scan.clone(), target.clone(), range);
        if let Some(&id) = self.inner.read().by_shape.get(&key) {
            return Ok(id);
        }
        // Validate up front so `get` can treat compilation as
        // infallible; keep the dispatcher's error precedence
        // (NotSubdomain before BadRange).
        for v in target.vars() {
            if !scan.contains(v.id()) {
                return Err(PotentialError::NotSubdomain { missing: v.id() });
            }
        }
        if range.start > range.end || range.end > scan.size() {
            return Err(PotentialError::BadRange {
                start: range.start,
                end: range.end,
                len: scan.size(),
            });
        }
        let (scan, target) = (scan.clone(), target.clone());
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_shape.get(&key) {
            return Ok(id); // raced with another interner
        }
        let id = PlanId(u32::try_from(inner.plans.len()).expect("plan count fits u32"));
        inner.plans.push(Arc::new(PlanEntry {
            scan,
            target,
            range,
            compiled: OnceLock::new(),
        }));
        inner.by_shape.insert(key, id);
        Ok(id)
    }

    /// The interned plan with the given id, compiled on first use and
    /// cached in the entry thereafter. Compilation happens outside the
    /// cache lock, so a worker building a large plan never blocks
    /// concurrent lookups.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this cache.
    pub fn get(&self, id: PlanId) -> Arc<KernelPlan> {
        let entry = Arc::clone(&self.inner.read().plans[id.index()]);
        Arc::clone(entry.compiled.get_or_init(|| {
            Arc::new(
                KernelPlan::compile(&entry.scan, &entry.target, entry.range)
                    .expect("interned shapes were validated"),
            )
        }))
    }

    /// The plan id for subrange `range` of task `task`, whose
    /// scan/target domains are `scan`/`target`. First use interns (or
    /// structurally re-keys) the shape and memoizes it under `(task,
    /// range)`; later uses are lock-read cache hits. Counts toward
    /// [`stats`](Self::stats). Dereference through [`get`](Self::get)
    /// to compile.
    ///
    /// # Errors
    ///
    /// Propagates [`intern`](Self::intern) shape errors.
    pub fn for_task_range(
        &self,
        task: TaskId,
        scan: &Domain,
        target: &Domain,
        range: EntryRange,
    ) -> Result<PlanId> {
        if let Some(&id) = self.inner.read().by_task_range.get(&(task, range)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(id);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let id = self.intern(scan, target, range)?;
        self.inner.write().by_task_range.insert((task, range), id);
        Ok(id)
    }

    /// Clears the `(task, range)` memo. Required whenever the owning
    /// graph's task ids are reassigned — a slice scaffold rebuilt by
    /// [`TaskGraph`](crate::TaskGraph)`::slice_into` reuses ids for
    /// different tasks, so a stale memo entry would resolve to a plan
    /// for the wrong domains. Interned shapes and compiled programs
    /// survive (they are keyed structurally, not by task).
    pub fn reset_memo(&self) {
        self.inner.write().by_task_range.clear();
    }

    /// Number of distinct interned plans.
    pub fn len(&self) -> usize {
        self.inner.read().plans.len()
    }

    /// Whether no plan has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of compiled plan programs resident in this cache. Only
    /// entries whose program has actually been compiled count —
    /// interned-but-never-dereferenced shapes hold no program memory.
    pub fn resident_bytes(&self) -> usize {
        self.inner
            .read()
            .plans
            .iter()
            .filter_map(|e| e.compiled.get())
            .map(|p| p.resident_bytes())
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            interned: self.len() as u64,
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for PlanCache {
    /// Clones the interned shapes and structural index; the immutable
    /// entries (and any already-compiled programs) are shared, so
    /// replicas never recompile each other's plans. The `(task, range)`
    /// memo and the hit/miss counters start fresh — they describe a
    /// particular execution history, not the graph.
    fn clone(&self) -> Self {
        let inner = self.inner.read();
        PlanCache {
            inner: RwLock::new(Inner {
                plans: inner.plans.clone(),
                by_shape: inner.by_shape.clone(),
                by_task_range: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("interned", &s.interned)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_potential::{VarId, Variable};

    fn dom(ids: &[u32]) -> Domain {
        Domain::new(ids.iter().map(|&i| Variable::binary(VarId(i))).collect()).unwrap()
    }

    #[test]
    fn structural_interning_dedups() {
        let cache = PlanCache::new();
        let scan = dom(&[0, 1, 2]);
        let target = dom(&[1]);
        let a = cache.intern(&scan, &target, EntryRange::full(8)).unwrap();
        let b = cache.intern(&scan, &target, EntryRange::full(8)).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let c = cache
            .intern(&scan, &target, EntryRange { start: 0, end: 4 })
            .unwrap();
        assert_ne!(a, c);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ranged_lookup_counts_hits_and_misses() {
        let cache = PlanCache::new();
        let scan = dom(&[0, 1]);
        let target = dom(&[0]);
        let r = EntryRange { start: 0, end: 2 };
        let id1 = cache.for_task_range(TaskId(3), &scan, &target, r).unwrap();
        let id2 = cache.for_task_range(TaskId(3), &scan, &target, r).unwrap();
        assert_eq!(id1, id2);
        // compilation is lazy and cached: both derefs share one program
        assert!(Arc::ptr_eq(&cache.get(id1), &cache.get(id2)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.interned), (1, 1, 1));
        // a different task with the same shape structurally shares the
        // plan but is a fresh (task, range) miss
        let id3 = cache.for_task_range(TaskId(9), &scan, &target, r).unwrap();
        assert_eq!(id3, id1);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().interned, 1);
    }

    #[test]
    fn clone_keeps_plans_resets_history() {
        let cache = PlanCache::new();
        let scan = dom(&[0, 1]);
        let target = dom(&[1]);
        let id = cache.intern(&scan, &target, EntryRange::full(4)).unwrap();
        let _ = cache
            .for_task_range(TaskId(0), &scan, &target, EntryRange::full(4))
            .unwrap();
        let c = cache.clone();
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        assert_eq!(c.intern(&scan, &target, EntryRange::full(4)).unwrap(), id);
    }

    #[test]
    fn bad_shapes_propagate_errors() {
        let cache = PlanCache::new();
        assert!(cache
            .intern(&dom(&[0]), &dom(&[7]), EntryRange::full(2))
            .is_err());
        assert_eq!(cache.len(), 0);
    }
}
