//! Property test: BIF write → parse round-trips any generated network.

use evprop_bayesnet::bif::{parse, with_generated_names, write};
use evprop_bayesnet::{random_network, JointDistribution, RandomNetworkConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bif_roundtrip_preserves_distribution(
        seed in 0u64..10_000,
        num_vars in 2usize..9,
        max_parents in 0usize..4,
        card_hi in 2usize..4,
    ) {
        let cfg = RandomNetworkConfig {
            num_vars,
            max_parents,
            cardinality: (2, card_hi),
            seed,
        };
        let net = random_network(&cfg).expect("valid network");
        let original = JointDistribution::of(&net).expect("small joint");
        let bif = with_generated_names(net, "roundtrip");
        let text = write(&bif);
        let reparsed = parse(&text).expect("writer output parses");
        prop_assert_eq!(reparsed.network.num_vars(), num_vars);
        prop_assert_eq!(&reparsed.var_names, &bif.var_names);
        let back = JointDistribution::of(&reparsed.network).expect("small joint");
        prop_assert!(
            original.table().approx_eq(back.table(), 1e-9),
            "joint distributions diverged after round-trip"
        );
    }

    /// The writer's structural statements parse back to the same graph.
    #[test]
    fn bif_roundtrip_preserves_structure(seed in 0u64..10_000) {
        let cfg = RandomNetworkConfig {
            num_vars: 10,
            max_parents: 3,
            cardinality: (2, 3),
            seed,
        };
        let net = random_network(&cfg).expect("valid network");
        let edges_before = net.num_edges();
        let parents_before: Vec<Vec<u32>> = (0..10u32)
            .map(|i| {
                let mut p: Vec<u32> = net
                    .parents_of(evprop_potential::VarId(i))
                    .iter()
                    .map(|v| v.0)
                    .collect();
                p.sort_unstable();
                p
            })
            .collect();
        let text = write(&with_generated_names(net, "s"));
        let again = parse(&text).expect("writer output parses");
        prop_assert_eq!(again.network.num_edges(), edges_before);
        for i in 0..10u32 {
            let mut p: Vec<u32> = again
                .network
                .parents_of(evprop_potential::VarId(i))
                .iter()
                .map(|v| v.0)
                .collect();
            p.sort_unstable();
            prop_assert_eq!(&p, &parents_before[i as usize], "parents of v{}", i);
        }
    }
}
