//! Bayesian network structure and conditional probability tables.

use crate::{BayesError, Result};
use evprop_potential::{Domain, Odometer, PotentialTable, VarId, Variable};
use std::fmt;

/// The conditional probability table `P(X | pa(X))` of one variable.
///
/// Internally the distribution is stored as a [`PotentialTable`] over the
/// canonical (id-sorted) domain `{X} ∪ pa(X)`; rows supplied by the user
/// are indexed by the parent order *they* gave, so construction is
/// ergonomic while storage stays canonical.
#[derive(Clone, Debug, PartialEq)]
pub struct Cpt {
    child: Variable,
    parents: Vec<Variable>,
    table: PotentialTable,
}

impl Cpt {
    /// Builds a CPT from `rows`: one row per parent configuration
    /// (odometer order over `parents` as listed, last parent fastest),
    /// each row a distribution over the child's states.
    ///
    /// A root variable (no parents) has exactly one row: its prior.
    ///
    /// # Errors
    ///
    /// [`BayesError::CptShapeMismatch`] for wrong row/column counts and
    /// [`BayesError::UnnormalizedCpt`] if any row does not sum to 1
    /// within `1e-9`.
    pub fn new(child: Variable, parents: Vec<Variable>, rows: Vec<Vec<f64>>) -> Result<Self> {
        let parent_dom = Domain::new(parents.clone())?;
        let expected_rows: usize = parents.iter().map(|p| p.cardinality()).product();
        if rows.len() != expected_rows {
            return Err(BayesError::CptShapeMismatch {
                var: child.id(),
                expected: (expected_rows, child.cardinality()),
                found: (rows.len(), rows.first().map_or(0, Vec::len)),
            });
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != child.cardinality() {
                return Err(BayesError::CptShapeMismatch {
                    var: child.id(),
                    expected: (expected_rows, child.cardinality()),
                    found: (rows.len(), row.len()),
                });
            }
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > 1e-9 {
                return Err(BayesError::UnnormalizedCpt {
                    var: child.id(),
                    parent_config: i,
                    sum: s,
                });
            }
        }

        // Lay the rows into the canonical table over {child} ∪ parents.
        let mut all = parents.clone();
        all.push(child);
        let dom = Domain::new(all)?;
        let mut table = PotentialTable::zeros(dom.clone());
        // Odometer over parents in *user* order.
        let user_parent_dom = parents.clone();
        let mut states = vec![0usize; dom.width()];
        for (row_idx, parent_states) in parent_odometer(&user_parent_dom).enumerate() {
            for (child_state, &p) in rows[row_idx].iter().enumerate() {
                for (pos, v) in dom.vars().iter().enumerate() {
                    states[pos] = if v.id() == child.id() {
                        child_state
                    } else {
                        let k = parents.iter().position(|pv| pv.id() == v.id()).unwrap();
                        parent_states[k]
                    };
                }
                table.set(&states, p);
            }
        }
        let _ = parent_dom; // validated duplicates/cardinalities above
        Ok(Cpt {
            child,
            parents,
            table,
        })
    }

    /// A uniform CPT (every row the uniform distribution).
    pub fn uniform(child: Variable, parents: Vec<Variable>) -> Result<Self> {
        let rows: usize = parents.iter().map(|p| p.cardinality()).product();
        let row = vec![1.0 / child.cardinality() as f64; child.cardinality()];
        Cpt::new(child, parents, vec![row; rows])
    }

    /// The child variable.
    pub fn child(&self) -> Variable {
        self.child
    }

    /// The parent variables, in the order given at construction.
    pub fn parents(&self) -> &[Variable] {
        &self.parents
    }

    /// The CPT as a potential table over the canonical domain
    /// `{child} ∪ parents`.
    pub fn table(&self) -> &PotentialTable {
        &self.table
    }
}

/// Iterates over parent configurations in user order, last parent fastest.
fn parent_odometer(parents: &[Variable]) -> impl Iterator<Item = Vec<usize>> + '_ {
    // Reuse Odometer over a synthetic domain with ids 0..n standing for
    // the user positions, so user order (not id order) drives iteration.
    let synth = Domain::new(
        parents
            .iter()
            .enumerate()
            .map(|(i, p)| Variable::new(VarId(i as u32), p.cardinality()))
            .collect(),
    )
    .expect("synthetic positions are unique");
    Odometer::new(&synth)
}

/// A discrete Bayesian network: a DAG over variables, one CPT per node
/// (§2 of the paper; Fig. 1(a)).
///
/// Construct with [`BayesianNetworkBuilder`]; the builder checks
/// acyclicity, CPT completeness and normalization.
#[derive(Clone, Debug)]
pub struct BayesianNetwork {
    vars: Vec<Variable>,
    cpts: Vec<Cpt>,
    /// Parent ids per variable position.
    parents: Vec<Vec<VarId>>,
    /// Children ids per variable position.
    children: Vec<Vec<VarId>>,
}

impl BayesianNetwork {
    /// Number of variables (nodes).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The variables, indexed by position `0..n`; positions equal
    /// `VarId::index()` (ids are dense by construction).
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// The variable with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn var(&self, id: VarId) -> Variable {
        self.vars[id.index()]
    }

    /// Parent ids of `id`.
    pub fn parents_of(&self, id: VarId) -> &[VarId] {
        &self.parents[id.index()]
    }

    /// Child ids of `id`.
    pub fn children_of(&self, id: VarId) -> &[VarId] {
        &self.children[id.index()]
    }

    /// The CPT of `id`.
    pub fn cpt(&self, id: VarId) -> &Cpt {
        &self.cpts[id.index()]
    }

    /// All CPTs, indexed by variable position.
    pub fn cpts(&self) -> &[Cpt] {
        &self.cpts
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for BayesianNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BayesianNetwork({} vars, {} edges)",
            self.num_vars(),
            self.num_edges()
        )
    }
}

/// Incremental builder for [`BayesianNetwork`].
///
/// # Example
///
/// ```
/// use evprop_bayesnet::BayesianNetworkBuilder;
///
/// let mut b = BayesianNetworkBuilder::new();
/// let rain = b.add_variable(2);
/// let wet = b.add_variable(2);
/// b.set_prior(rain, vec![0.8, 0.2]).unwrap();
/// b.set_cpt(wet, &[rain], vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
/// let net = b.build().unwrap();
/// assert_eq!(net.num_edges(), 1);
/// ```
#[derive(Debug, Default)]
pub struct BayesianNetworkBuilder {
    vars: Vec<Variable>,
    cpts: Vec<Option<Cpt>>,
}

impl BayesianNetworkBuilder {
    /// A builder with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a fresh variable with `cardinality` states and returns its
    /// id (ids are dense, assigned in declaration order).
    pub fn add_variable(&mut self, cardinality: usize) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable::new(id, cardinality));
        self.cpts.push(None);
        id
    }

    /// Sets the prior of a root variable: one row summing to 1.
    ///
    /// # Errors
    ///
    /// See [`Cpt::new`]; also [`BayesError::UnknownVariable`] /
    /// [`BayesError::DuplicateCpt`].
    pub fn set_prior(&mut self, var: VarId, prior: Vec<f64>) -> Result<&mut Self> {
        self.set_cpt(var, &[], vec![prior])
    }

    /// Sets the CPT of `var` given `parents`: one row per parent
    /// configuration (odometer order over `parents` as listed, last
    /// fastest).
    ///
    /// # Errors
    ///
    /// [`BayesError::UnknownVariable`] for undeclared ids,
    /// [`BayesError::DuplicateCpt`] if already set, plus [`Cpt::new`]'s
    /// shape/normalization errors.
    pub fn set_cpt(
        &mut self,
        var: VarId,
        parents: &[VarId],
        rows: Vec<Vec<f64>>,
    ) -> Result<&mut Self> {
        let child = *self
            .vars
            .get(var.index())
            .ok_or(BayesError::UnknownVariable(var))?;
        let parent_vars: Vec<Variable> = parents
            .iter()
            .map(|&p| {
                self.vars
                    .get(p.index())
                    .copied()
                    .ok_or(BayesError::UnknownVariable(p))
            })
            .collect::<Result<_>>()?;
        let slot = &mut self.cpts[var.index()];
        if slot.is_some() {
            return Err(BayesError::DuplicateCpt(var));
        }
        *slot = Some(Cpt::new(child, parent_vars, rows)?);
        Ok(self)
    }

    /// Finishes the network, checking every variable has a CPT and the
    /// edges form a DAG.
    ///
    /// # Errors
    ///
    /// [`BayesError::MissingCpt`] or [`BayesError::CyclicGraph`].
    pub fn build(self) -> Result<BayesianNetwork> {
        let n = self.vars.len();
        let mut cpts = Vec::with_capacity(n);
        for (i, c) in self.cpts.into_iter().enumerate() {
            cpts.push(c.ok_or(BayesError::MissingCpt(VarId(i as u32)))?);
        }
        let parents: Vec<Vec<VarId>> = cpts
            .iter()
            .map(|c| c.parents().iter().map(|p| p.id()).collect())
            .collect();
        let mut children: Vec<Vec<VarId>> = vec![Vec::new(); n];
        for (i, ps) in parents.iter().enumerate() {
            for p in ps {
                children[p.index()].push(VarId(i as u32));
            }
        }
        let net = BayesianNetwork {
            vars: self.vars,
            cpts,
            parents,
            children,
        };
        if crate::topo::topological_order(&net).is_none() {
            return Err(BayesError::CyclicGraph);
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpt_rows_land_in_canonical_table() {
        // child V0, parent V1 (child id < parent id: exercises sorting)
        let child = Variable::binary(VarId(0));
        let parent = Variable::binary(VarId(1));
        let cpt = Cpt::new(child, vec![parent], vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap();
        let t = cpt.table();
        // canonical domain order: V0, V1; P(V0=1 | V1=0) = 0.1
        assert_eq!(t.get(&[1, 0]), 0.1);
        assert_eq!(t.get(&[0, 1]), 0.3);
        assert_eq!(t.get(&[1, 1]), 0.7);
    }

    #[test]
    fn cpt_two_parents_user_order() {
        // P(c | a, b) with rows in odometer order over (a, b), b fastest.
        let a = Variable::binary(VarId(2));
        let b = Variable::binary(VarId(1));
        let c = Variable::binary(VarId(0));
        let rows = vec![
            vec![1.0, 0.0], // a=0,b=0
            vec![0.8, 0.2], // a=0,b=1
            vec![0.6, 0.4], // a=1,b=0
            vec![0.0, 1.0], // a=1,b=1
        ];
        let cpt = Cpt::new(c, vec![a, b], rows).unwrap();
        // canonical domain V0,V1,V2 = (c, b, a)
        assert_eq!(cpt.table().get(&[1, 1, 0]), 0.2); // c=1,b=1,a=0
        assert_eq!(cpt.table().get(&[0, 0, 1]), 0.6); // c=0,b=0,a=1
    }

    #[test]
    fn cpt_rejects_bad_shapes() {
        let v = Variable::binary(VarId(0));
        let p = Variable::binary(VarId(1));
        assert!(matches!(
            Cpt::new(v, vec![p], vec![vec![1.0, 0.0]]),
            Err(BayesError::CptShapeMismatch { .. })
        ));
        assert!(matches!(
            Cpt::new(v, vec![p], vec![vec![1.0], vec![1.0]]),
            Err(BayesError::CptShapeMismatch { .. })
        ));
    }

    #[test]
    fn cpt_rejects_unnormalized() {
        let v = Variable::binary(VarId(0));
        assert!(matches!(
            Cpt::new(v, vec![], vec![vec![0.5, 0.6]]),
            Err(BayesError::UnnormalizedCpt { .. })
        ));
    }

    #[test]
    fn uniform_cpt() {
        let v = Variable::new(VarId(0), 4);
        let p = Variable::binary(VarId(1));
        let c = Cpt::uniform(v, vec![p]).unwrap();
        assert_eq!(c.table().get(&[2, 1]), 0.25);
    }

    #[test]
    fn builder_happy_path() {
        let mut b = BayesianNetworkBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(3);
        b.set_prior(x, vec![0.4, 0.6]).unwrap();
        b.set_cpt(y, &[x], vec![vec![0.2, 0.3, 0.5], vec![0.1, 0.1, 0.8]])
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.num_vars(), 2);
        assert_eq!(net.parents_of(y), &[x]);
        assert_eq!(net.children_of(x), &[y]);
        assert_eq!(net.var(y).cardinality(), 3);
        assert_eq!(net.num_edges(), 1);
        assert!(net.to_string().contains("2 vars"));
    }

    #[test]
    fn builder_detects_cycles() {
        let mut b = BayesianNetworkBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.set_cpt(x, &[y], vec![vec![0.5, 0.5], vec![0.5, 0.5]])
            .unwrap();
        b.set_cpt(y, &[x], vec![vec![0.5, 0.5], vec![0.5, 0.5]])
            .unwrap();
        assert_eq!(b.build().unwrap_err(), BayesError::CyclicGraph);
    }

    #[test]
    fn builder_detects_missing_and_duplicate_cpts() {
        let mut b = BayesianNetworkBuilder::new();
        let x = b.add_variable(2);
        assert!(matches!(b.build(), Err(BayesError::MissingCpt(_))));

        let mut b = BayesianNetworkBuilder::new();
        let x2 = b.add_variable(2);
        b.set_prior(x2, vec![0.5, 0.5]).unwrap();
        assert!(matches!(
            b.set_prior(x2, vec![0.5, 0.5]),
            Err(BayesError::DuplicateCpt(_))
        ));
        let _ = x;
    }

    #[test]
    fn builder_unknown_variable() {
        let mut b = BayesianNetworkBuilder::new();
        assert!(matches!(
            b.set_prior(VarId(0), vec![1.0]),
            Err(BayesError::UnknownVariable(_))
        ));
        let x = b.add_variable(2);
        assert!(matches!(
            b.set_cpt(x, &[VarId(9)], vec![vec![0.5, 0.5]]),
            Err(BayesError::UnknownVariable(_))
        ));
    }
}
