//! Random Bayesian-network generation for tests and workloads.

use crate::{BayesianNetwork, BayesianNetworkBuilder, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_network`].
#[derive(Clone, Debug)]
pub struct RandomNetworkConfig {
    /// Number of variables.
    pub num_vars: usize,
    /// Maximum parents per node (actual count is uniform in `0..=max`,
    /// clipped by the number of earlier nodes).
    pub max_parents: usize,
    /// Inclusive range of variable cardinalities.
    pub cardinality: (usize, usize),
    /// PRNG seed; equal seeds give equal networks.
    pub seed: u64,
}

impl Default for RandomNetworkConfig {
    fn default() -> Self {
        RandomNetworkConfig {
            num_vars: 10,
            max_parents: 2,
            cardinality: (2, 2),
            seed: 0,
        }
    }
}

/// Generates a random Bayesian network: a random DAG over `num_vars`
/// nodes (node `i` may only have parents among `0..i`, guaranteeing
/// acyclicity) with random strictly-positive CPTs.
///
/// # Errors
///
/// Construction errors are impossible for well-formed configs but are
/// propagated rather than unwrapped.
///
/// # Panics
///
/// Panics if `num_vars == 0` or the cardinality range is empty/zero.
pub fn random_network(cfg: &RandomNetworkConfig) -> Result<BayesianNetwork> {
    assert!(cfg.num_vars > 0, "need at least one variable");
    assert!(
        cfg.cardinality.0 >= 1 && cfg.cardinality.0 <= cfg.cardinality.1,
        "invalid cardinality range"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = BayesianNetworkBuilder::new();
    let mut ids = Vec::with_capacity(cfg.num_vars);
    let mut cards = Vec::with_capacity(cfg.num_vars);
    for _ in 0..cfg.num_vars {
        let card = rng.gen_range(cfg.cardinality.0..=cfg.cardinality.1);
        ids.push(b.add_variable(card));
        cards.push(card);
    }
    for i in 0..cfg.num_vars {
        let avail = i;
        let k = rng.gen_range(0..=cfg.max_parents.min(avail));
        // sample k distinct earlier nodes
        let mut parents = Vec::with_capacity(k);
        while parents.len() < k {
            let p = rng.gen_range(0..avail);
            if !parents.contains(&ids[p]) {
                parents.push(ids[p]);
            }
        }
        let rows: usize = parents.iter().map(|p| cards[p.index()]).product();
        let child_card = cards[i];
        let mut cpt_rows = Vec::with_capacity(rows);
        for _ in 0..rows {
            cpt_rows.push(random_distribution(&mut rng, child_card));
        }
        b.set_cpt(ids[i], &parents, cpt_rows)?;
    }
    b.build()
}

/// A random strictly-positive distribution over `n` states (each entry at
/// least ~0.05/n, avoiding numerically-degenerate zeros).
fn random_distribution(rng: &mut StdRng, n: usize) -> Vec<f64> {
    let mut row: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
    let s: f64 = row.iter().sum();
    for v in &mut row {
        *v /= s;
    }
    // repair rounding so the row sums to exactly 1 within 1e-12
    let s: f64 = row.iter().sum();
    row[n - 1] += 1.0 - s;
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JointDistribution;
    use evprop_potential::EvidenceSet;

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomNetworkConfig {
            num_vars: 8,
            max_parents: 3,
            cardinality: (2, 3),
            seed: 42,
        };
        let a = random_network(&cfg).unwrap();
        let b = random_network(&cfg).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for (ca, cb) in a.cpts().iter().zip(b.cpts()) {
            assert_eq!(ca.table().data(), cb.table().data());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = RandomNetworkConfig {
            num_vars: 12,
            max_parents: 3,
            ..Default::default()
        };
        let a = random_network(&cfg).unwrap();
        cfg.seed = 1;
        let b = random_network(&cfg).unwrap();
        // Edge counts could coincide; compare CPT payloads.
        let same = a
            .cpts()
            .iter()
            .zip(b.cpts())
            .all(|(x, y)| x.table().data() == y.table().data());
        assert!(!same);
    }

    #[test]
    fn random_networks_are_valid_distributions() {
        for seed in 0..5 {
            let cfg = RandomNetworkConfig {
                num_vars: 9,
                max_parents: 2,
                cardinality: (2, 3),
                seed,
            };
            let net = random_network(&cfg).unwrap();
            let j = JointDistribution::of(&net).unwrap();
            assert!(
                (j.table().sum() - 1.0).abs() < 1e-9,
                "joint of seed {seed} does not normalize"
            );
            let m = j
                .marginal(evprop_potential::VarId(0), &EvidenceSet::new())
                .unwrap();
            assert!(m.data().iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn respects_max_parents() {
        let cfg = RandomNetworkConfig {
            num_vars: 20,
            max_parents: 2,
            cardinality: (2, 2),
            seed: 7,
        };
        let net = random_network(&cfg).unwrap();
        for i in 0..20u32 {
            assert!(net.parents_of(evprop_potential::VarId(i)).len() <= 2);
        }
    }
}
