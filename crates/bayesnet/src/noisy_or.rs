//! Noisy-OR models and QMR-style two-layer diagnosis networks.
//!
//! The noisy-OR is the workhorse CPT of large medical-diagnosis networks
//! (QMR-DT, and the bipartite disease→symptom models the paper's
//! introduction motivates): a binary child fires if any active parent
//! "gets through" its inhibition, or a leak does. With per-parent
//! inhibition probabilities `q_i` and leak `q_0`:
//!
//! ```text
//! P(child = 0 | parents) = q_0 · Π_{i : parent_i = 1} q_i
//! ```
//!
//! Unlike a dense CPT, the family is defined by `k + 1` numbers for `k`
//! parents, so correctness is checkable analytically — which makes these
//! networks ideal large test workloads.

use crate::{BayesError, BayesianNetwork, BayesianNetworkBuilder, Cpt, Result};
use evprop_potential::Variable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

impl Cpt {
    /// Builds a noisy-OR CPT for a **binary** child with binary parents:
    /// `leak_inhibition` is `q_0` (the probability the child stays off
    /// with no active parent), and `inhibitions[i]` is `q_i` (the
    /// probability parent `i`'s influence is blocked).
    ///
    /// # Errors
    ///
    /// [`BayesError::CptShapeMismatch`] if `inhibitions` does not match
    /// the parent count; propagates CPT construction failures. All
    /// variables must be binary and the probabilities in `[0, 1]`,
    /// enforced by assertion.
    ///
    /// # Example
    ///
    /// ```
    /// use evprop_bayesnet::Cpt;
    /// use evprop_potential::{Variable, VarId};
    /// let child = Variable::binary(VarId(2));
    /// let parents = vec![Variable::binary(VarId(0)), Variable::binary(VarId(1))];
    /// let cpt = Cpt::noisy_or(child, parents, 0.99, &[0.3, 0.1]).unwrap();
    /// // both parents active: P(off) = 0.99 · 0.3 · 0.1
    /// assert!((cpt.table().get(&[1, 1, 0]) - 0.0297).abs() < 1e-12);
    /// ```
    pub fn noisy_or(
        child: Variable,
        parents: Vec<Variable>,
        leak_inhibition: f64,
        inhibitions: &[f64],
    ) -> Result<Self> {
        assert!(
            (0.0..=1.0).contains(&leak_inhibition),
            "leak inhibition must be a probability"
        );
        assert!(
            inhibitions.iter().all(|q| (0.0..=1.0).contains(q)),
            "inhibitions must be probabilities"
        );
        assert!(
            child.cardinality() == 2 && parents.iter().all(|p| p.cardinality() == 2),
            "noisy-OR is defined for binary variables"
        );
        if inhibitions.len() != parents.len() {
            return Err(BayesError::CptShapeMismatch {
                var: child.id(),
                expected: (parents.len(), 2),
                found: (inhibitions.len(), 2),
            });
        }
        let n_cfg = 1usize << parents.len();
        let mut rows = Vec::with_capacity(n_cfg);
        for cfg in 0..n_cfg {
            // parent states in user order, last parent fastest
            let mut p_off = leak_inhibition;
            for (i, &q) in inhibitions.iter().enumerate() {
                let bit = (cfg >> (parents.len() - 1 - i)) & 1;
                if bit == 1 {
                    p_off *= q;
                }
            }
            rows.push(vec![p_off, 1.0 - p_off]);
        }
        Cpt::new(child, parents, rows)
    }
}

/// Parameters of a QMR-style bipartite diagnosis network: a layer of
/// independent binary diseases over a layer of noisy-OR symptoms.
#[derive(Clone, Debug)]
pub struct QmrConfig {
    /// Number of disease (root) variables.
    pub diseases: usize,
    /// Number of symptom (leaf) variables.
    pub symptoms: usize,
    /// Parents per symptom (sampled uniformly among diseases).
    pub parents_per_symptom: usize,
    /// PRNG seed for structure, priors and inhibitions.
    pub seed: u64,
}

impl Default for QmrConfig {
    fn default() -> Self {
        QmrConfig {
            diseases: 8,
            symptoms: 16,
            parents_per_symptom: 3,
            seed: 0,
        }
    }
}

/// Generates a QMR-style network: disease priors uniform in
/// `[0.01, 0.1]`, symptom leak inhibitions in `[0.95, 0.999]`, per-edge
/// inhibitions in `[0.1, 0.7]`. Variables `0..diseases` are the
/// diseases; the rest are symptoms.
///
/// # Errors
///
/// Construction errors are impossible for well-formed configs but are
/// propagated rather than unwrapped.
///
/// # Panics
///
/// Panics when `parents_per_symptom` exceeds `diseases` or either layer
/// is empty.
pub fn qmr_network(cfg: &QmrConfig) -> Result<BayesianNetwork> {
    assert!(
        cfg.diseases > 0 && cfg.symptoms > 0,
        "layers must be nonempty"
    );
    assert!(
        cfg.parents_per_symptom >= 1 && cfg.parents_per_symptom <= cfg.diseases,
        "parents_per_symptom must be in 1..=diseases"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = BayesianNetworkBuilder::new();
    let mut diseases = Vec::with_capacity(cfg.diseases);
    for _ in 0..cfg.diseases {
        let d = b.add_variable(2);
        let p = rng.gen_range(0.01..0.1);
        b.set_prior(d, vec![1.0 - p, p])?;
        diseases.push(d);
    }
    for _ in 0..cfg.symptoms {
        let s = b.add_variable(2);
        // sample distinct parents
        let mut parents = Vec::with_capacity(cfg.parents_per_symptom);
        while parents.len() < cfg.parents_per_symptom {
            let d = diseases[rng.gen_range(0..cfg.diseases)];
            if !parents.contains(&d) {
                parents.push(d);
            }
        }
        let leak = rng.gen_range(0.95..0.999);
        let inhibitions: Vec<f64> = (0..parents.len())
            .map(|_| rng.gen_range(0.1..0.7))
            .collect();
        // noisy-OR rows in parent-odometer order, last parent fastest
        let n_cfg = 1usize << parents.len();
        let rows: Vec<Vec<f64>> = (0..n_cfg)
            .map(|cfg| {
                let mut p_off = leak;
                for (i, &q) in inhibitions.iter().enumerate() {
                    if (cfg >> (parents.len() - 1 - i)) & 1 == 1 {
                        p_off *= q;
                    }
                }
                vec![p_off, 1.0 - p_off]
            })
            .collect();
        b.set_cpt(s, &parents, rows)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JointDistribution, RandomNetworkConfig};
    use evprop_potential::{EvidenceSet, VarId};

    #[test]
    fn noisy_or_analytic_values() {
        let child = Variable::binary(VarId(3));
        let parents = vec![
            Variable::binary(VarId(0)),
            Variable::binary(VarId(1)),
            Variable::binary(VarId(2)),
        ];
        let cpt = Cpt::noisy_or(child, parents, 0.9, &[0.5, 0.25, 0.2]).unwrap();
        let t = cpt.table();
        // domain order is V0..V3; P(child off | states)
        assert!((t.get(&[0, 0, 0, 0]) - 0.9).abs() < 1e-12);
        assert!((t.get(&[1, 0, 0, 0]) - 0.45).abs() < 1e-12);
        assert!((t.get(&[0, 1, 1, 0]) - 0.9 * 0.25 * 0.2).abs() < 1e-12);
        assert!((t.get(&[1, 1, 1, 0]) - 0.9 * 0.5 * 0.25 * 0.2).abs() < 1e-12);
        // rows normalize by construction (validated in Cpt::new)
    }

    #[test]
    fn noisy_or_rejects_bad_shapes() {
        let child = Variable::binary(VarId(1));
        let parents = vec![Variable::binary(VarId(0))];
        assert!(matches!(
            Cpt::noisy_or(child, parents, 0.9, &[0.5, 0.5]),
            Err(BayesError::CptShapeMismatch { .. })
        ));
    }

    #[test]
    fn qmr_network_builds_and_infers() {
        let cfg = QmrConfig {
            diseases: 5,
            symptoms: 8,
            parents_per_symptom: 2,
            seed: 3,
        };
        let net = qmr_network(&cfg).unwrap();
        assert_eq!(net.num_vars(), 13);
        // all symptoms have exactly 2 parents
        for s in 5..13u32 {
            assert_eq!(net.parents_of(VarId(s)).len(), 2);
        }
        // observing a symptom raises its parents' posteriors (explaining in)
        let joint = JointDistribution::of(&net).unwrap();
        let symptom = VarId(5);
        let parent = net.parents_of(symptom)[0];
        let prior = joint.marginal(parent, &EvidenceSet::new()).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(symptom, 1);
        let post = joint.marginal(parent, &ev).unwrap();
        assert!(post.data()[1] > prior.data()[1]);
    }

    #[test]
    fn qmr_deterministic_per_seed() {
        let cfg = QmrConfig::default();
        let a = qmr_network(&cfg).unwrap();
        let b = qmr_network(&cfg).unwrap();
        for (ca, cb) in a.cpts().iter().zip(b.cpts()) {
            assert_eq!(ca.table().data(), cb.table().data());
        }
        let _ = RandomNetworkConfig::default(); // silence unused-import lint paths
    }
}
