//! Bayesian networks: directed acyclic graphical models with conditional
//! probability tables (CPTs).
//!
//! This crate provides the *input side* of the PACT 2009 reproduction:
//! networks are later compiled to junction trees (crate `evprop-jtree`)
//! on which parallel evidence propagation runs. It also provides a
//! brute-force joint-distribution oracle used as ground truth by every
//! engine's correctness tests, a library of classic demo networks, and a
//! random-network generator for workloads.
//!
//! # Example
//!
//! ```
//! use evprop_bayesnet::BayesianNetwork;
//!
//! // The classic sprinkler network: Cloudy -> {Sprinkler, Rain} -> WetGrass.
//! let net = evprop_bayesnet::networks::sprinkler();
//! assert_eq!(net.num_vars(), 4);
//! let order = net.topological_order();
//! assert_eq!(order.len(), 4);
//! # let _: &BayesianNetwork = &net;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bif;
mod error;
mod generate;
mod hmm;
mod joint;
mod network;
pub mod networks;
mod noisy_or;
mod sampling;
mod topo;

pub use error::BayesError;
pub use generate::{random_network, RandomNetworkConfig};
pub use hmm::HiddenMarkovModel;
pub use joint::JointDistribution;
pub use network::{BayesianNetwork, BayesianNetworkBuilder, Cpt};
pub use noisy_or::{qmr_network, QmrConfig};
pub use sampling::ForwardSampler;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, BayesError>;
