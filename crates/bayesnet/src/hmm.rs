//! Hidden Markov models: a classic dynamic-Bayesian-network family with
//! *independent* textbook inference algorithms (forward–backward,
//! Viterbi) — used to cross-validate the junction-tree engines on deep
//! chain structures, and useful in their own right.
//!
//! An HMM unrolled for `T` steps is a Bayesian network
//! `H_0 → H_1 → … → H_{T−1}` with an emission `H_t → O_t` per step; its
//! junction tree is a path of width-2 cliques, the worst case for
//! structural parallelism (only the Partition module helps) and exactly
//! the regime the paper's rerooting analysis targets.

use crate::{BayesianNetwork, BayesianNetworkBuilder, Result};
use evprop_potential::VarId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A discrete hidden Markov model: initial distribution `pi`, transition
/// matrix `a[i][j] = P(H_{t+1}=j | H_t=i)`, emission matrix
/// `b[i][k] = P(O_t=k | H_t=i)`.
#[derive(Clone, Debug, PartialEq)]
pub struct HiddenMarkovModel {
    /// Initial hidden-state distribution.
    pub pi: Vec<f64>,
    /// Row-stochastic transition matrix.
    pub a: Vec<Vec<f64>>,
    /// Row-stochastic emission matrix.
    pub b: Vec<Vec<f64>>,
}

// The α/β/δ recursions below are written index-style to mirror the
// textbook (Rabiner) formulas; iterator rewrites obscure the math.
#[allow(clippy::needless_range_loop)]
impl HiddenMarkovModel {
    /// Validates and wraps the parameter matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or rows that do not sum to 1 within
    /// `1e-9` — these are programming errors, not runtime conditions.
    pub fn new(pi: Vec<f64>, a: Vec<Vec<f64>>, b: Vec<Vec<f64>>) -> Self {
        let n = pi.len();
        assert!(n > 0, "need at least one hidden state");
        assert_eq!(a.len(), n, "transition rows");
        assert_eq!(b.len(), n, "emission rows");
        let close = |s: f64| (s - 1.0).abs() < 1e-9;
        assert!(close(pi.iter().sum()), "pi must normalize");
        for r in &a {
            assert_eq!(r.len(), n, "transition columns");
            assert!(close(r.iter().sum()), "transition rows must normalize");
        }
        let m = b[0].len();
        for r in &b {
            assert_eq!(r.len(), m, "emission columns");
            assert!(close(r.iter().sum()), "emission rows must normalize");
        }
        HiddenMarkovModel { pi, a, b }
    }

    /// A random HMM with `n` hidden and `m` observed states,
    /// deterministic per seed. Entries are bounded away from zero so all
    /// observation sequences have positive probability.
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let row = |len: usize, rng: &mut StdRng| -> Vec<f64> {
            let mut v: Vec<f64> = (0..len).map(|_| rng.gen_range(0.05..1.0)).collect();
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            let s: f64 = v.iter().sum();
            v[len - 1] += 1.0 - s;
            v
        };
        let pi = row(n, &mut rng);
        let a = (0..n).map(|_| row(n, &mut rng)).collect();
        let b = (0..n).map(|_| row(m, &mut rng)).collect();
        HiddenMarkovModel::new(pi, a, b)
    }

    /// Number of hidden states.
    pub fn num_hidden(&self) -> usize {
        self.pi.len()
    }

    /// Number of observation symbols.
    pub fn num_observed(&self) -> usize {
        self.b[0].len()
    }

    /// Unrolls the HMM for `steps` time steps into a Bayesian network.
    /// Variable layout: `H_t` is `VarId(2t)`, `O_t` is `VarId(2t + 1)`.
    ///
    /// # Errors
    ///
    /// Construction errors are impossible for validated models but are
    /// propagated rather than unwrapped.
    ///
    /// # Panics
    ///
    /// Panics when `steps == 0`.
    pub fn unroll(&self, steps: usize) -> Result<BayesianNetwork> {
        assert!(steps > 0, "need at least one time step");
        let mut bld = BayesianNetworkBuilder::new();
        let mut prev_hidden: Option<VarId> = None;
        for _ in 0..steps {
            let h = bld.add_variable(self.num_hidden());
            let o = bld.add_variable(self.num_observed());
            match prev_hidden {
                None => {
                    bld.set_prior(h, self.pi.clone())?;
                }
                Some(ph) => {
                    bld.set_cpt(h, &[ph], self.a.clone())?;
                }
            }
            bld.set_cpt(o, &[h], self.b.clone())?;
            prev_hidden = Some(h);
        }
        bld.build()
    }

    /// The `VarId` of hidden state `H_t` in the unrolled network.
    pub fn hidden_var(t: usize) -> VarId {
        VarId(2 * t as u32)
    }

    /// The `VarId` of observation `O_t` in the unrolled network.
    pub fn observed_var(t: usize) -> VarId {
        VarId(2 * t as u32 + 1)
    }

    /// Classic **forward–backward smoothing**: returns
    /// `γ_t(i) = P(H_t = i | o_0..o_{T−1})` for every step, plus the
    /// observation likelihood `P(o_0..o_{T−1})`. Implemented with scaled
    /// α/β recursions (Rabiner's normalization), numerically stable for
    /// long sequences.
    ///
    /// # Panics
    ///
    /// Panics on an empty observation sequence, an out-of-range symbol,
    /// or an impossible sequence (zero likelihood).
    pub fn smooth(&self, observations: &[usize]) -> (Vec<Vec<f64>>, f64) {
        let t_len = observations.len();
        assert!(t_len > 0, "need at least one observation");
        let n = self.num_hidden();
        for &o in observations {
            assert!(o < self.num_observed(), "observation symbol out of range");
        }

        // scaled forward pass
        let mut alpha = vec![vec![0.0f64; n]; t_len];
        let mut scale = vec![0.0f64; t_len];
        for i in 0..n {
            alpha[0][i] = self.pi[i] * self.b[i][observations[0]];
        }
        scale[0] = alpha[0].iter().sum();
        assert!(scale[0] > 0.0, "impossible observation sequence");
        for v in &mut alpha[0] {
            *v /= scale[0];
        }
        for t in 1..t_len {
            for j in 0..n {
                let mut s = 0.0;
                for i in 0..n {
                    s += alpha[t - 1][i] * self.a[i][j];
                }
                alpha[t][j] = s * self.b[j][observations[t]];
            }
            scale[t] = alpha[t].iter().sum();
            assert!(scale[t] > 0.0, "impossible observation sequence");
            for v in &mut alpha[t] {
                *v /= scale[t];
            }
        }

        // scaled backward pass
        let mut beta = vec![vec![1.0f64; n]; t_len];
        for t in (0..t_len - 1).rev() {
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += self.a[i][j] * self.b[j][observations[t + 1]] * beta[t + 1][j];
                }
                beta[t][i] = s / scale[t + 1];
            }
        }

        // posteriors
        let mut gamma = vec![vec![0.0f64; n]; t_len];
        for t in 0..t_len {
            let mut z = 0.0;
            for i in 0..n {
                gamma[t][i] = alpha[t][i] * beta[t][i];
                z += gamma[t][i];
            }
            for v in &mut gamma[t] {
                *v /= z;
            }
        }
        let log_likelihood: f64 = scale.iter().map(|s| s.ln()).sum();
        (gamma, log_likelihood.exp())
    }

    /// Classic **Viterbi decoding**: the most probable hidden path for
    /// the observations and its joint probability
    /// `max_h P(h, o_0..o_{T−1})`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`HiddenMarkovModel::smooth`].
    pub fn viterbi(&self, observations: &[usize]) -> (Vec<usize>, f64) {
        let t_len = observations.len();
        assert!(t_len > 0, "need at least one observation");
        let n = self.num_hidden();
        // log-space DP
        let lg = |x: f64| {
            if x > 0.0 {
                x.ln()
            } else {
                f64::NEG_INFINITY
            }
        };
        let mut delta: Vec<f64> = (0..n)
            .map(|i| lg(self.pi[i]) + lg(self.b[i][observations[0]]))
            .collect();
        let mut back = vec![vec![0usize; n]; t_len];
        for t in 1..t_len {
            let mut next = vec![f64::NEG_INFINITY; n];
            for j in 0..n {
                let mut best = (f64::NEG_INFINITY, 0usize);
                for i in 0..n {
                    let v = delta[i] + lg(self.a[i][j]);
                    if v > best.0 {
                        best = (v, i);
                    }
                }
                next[j] = best.0 + lg(self.b[j][observations[t]]);
                back[t][j] = best.1;
            }
            delta = next;
        }
        let (mut state, mut best) = (0usize, f64::NEG_INFINITY);
        for (i, &v) in delta.iter().enumerate() {
            if v > best {
                best = v;
                state = i;
            }
        }
        let mut path = vec![0usize; t_len];
        path[t_len - 1] = state;
        for t in (1..t_len).rev() {
            state = back[t][state];
            path[t - 1] = state;
        }
        (path, best.exp())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style matches the math
mod tests {
    use super::*;
    use crate::JointDistribution;
    use evprop_potential::EvidenceSet;

    fn toy() -> HiddenMarkovModel {
        // weather/umbrella HMM from Russell–Norvig
        HiddenMarkovModel::new(
            vec![0.5, 0.5],
            vec![vec![0.7, 0.3], vec![0.3, 0.7]],
            vec![vec![0.9, 0.1], vec![0.2, 0.8]],
        )
    }

    #[test]
    fn unroll_layout() {
        let net = toy().unroll(4).unwrap();
        assert_eq!(net.num_vars(), 8);
        assert_eq!(net.parents_of(HiddenMarkovModel::hidden_var(2)).len(), 1);
        assert_eq!(
            net.parents_of(HiddenMarkovModel::observed_var(2)),
            &[HiddenMarkovModel::hidden_var(2)]
        );
    }

    #[test]
    fn smoothing_matches_joint_oracle() {
        let hmm = toy();
        let net = hmm.unroll(5).unwrap();
        let joint = JointDistribution::of(&net).unwrap();
        let obs = [0usize, 1, 1, 0, 1];
        let mut ev = EvidenceSet::new();
        for (t, &o) in obs.iter().enumerate() {
            ev.observe(HiddenMarkovModel::observed_var(t), o);
        }
        let (gamma, like) = hmm.smooth(&obs);
        for t in 0..5 {
            let m = joint
                .marginal(HiddenMarkovModel::hidden_var(t), &ev)
                .unwrap();
            for i in 0..2 {
                assert!(
                    (m.data()[i] - gamma[t][i]).abs() < 1e-9,
                    "t={t} i={i}: {} vs {}",
                    m.data()[i],
                    gamma[t][i]
                );
            }
        }
        let pe = joint.probability_of_evidence(&ev).unwrap();
        assert!((like - pe).abs() < 1e-12);
    }

    #[test]
    fn viterbi_matches_bruteforce() {
        let hmm = toy();
        let obs = [0usize, 0, 1, 0];
        let (path, p) = hmm.viterbi(&obs);
        // brute force over 2^4 hidden paths
        let mut best = (vec![], f64::NEG_INFINITY);
        for mask in 0..16usize {
            let h: Vec<usize> = (0..4).map(|t| (mask >> t) & 1).collect();
            let mut prob = hmm.pi[h[0]] * hmm.b[h[0]][obs[0]];
            for t in 1..4 {
                prob *= hmm.a[h[t - 1]][h[t]] * hmm.b[h[t]][obs[t]];
            }
            if prob > best.1 {
                best = (h, prob);
            }
        }
        assert!((p - best.1).abs() < 1e-12);
        assert_eq!(path, best.0);
    }

    #[test]
    fn random_hmm_rows_normalize() {
        let hmm = HiddenMarkovModel::random(4, 3, 9);
        assert_eq!(hmm.num_hidden(), 4);
        assert_eq!(hmm.num_observed(), 3);
        assert!((hmm.pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // deterministic per seed
        assert_eq!(hmm, HiddenMarkovModel::random(4, 3, 9));
        assert_ne!(hmm, HiddenMarkovModel::random(4, 3, 10));
    }

    #[test]
    fn long_sequences_stay_finite() {
        let hmm = HiddenMarkovModel::random(3, 4, 1);
        let obs: Vec<usize> = (0..500).map(|t| t % 4).collect();
        let (gamma, like) = hmm.smooth(&obs);
        assert!(like >= 0.0 && like.is_finite());
        for g in &gamma {
            let s: f64 = g.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        let (path, p) = hmm.viterbi(&obs);
        assert_eq!(path.len(), 500);
        assert!(p >= 0.0); // underflows to 0 in linear space; DP was in logs
    }
}
