//! Topological utilities over the network DAG.

use crate::BayesianNetwork;
use evprop_potential::VarId;

/// Kahn's algorithm; returns `None` when the graph has a cycle.
pub(crate) fn topological_order(net: &BayesianNetwork) -> Option<Vec<VarId>> {
    let n = net.num_vars();
    let mut indeg: Vec<usize> = (0..n)
        .map(|i| net.parents_of(VarId(i as u32)).len())
        .collect();
    let mut queue: Vec<VarId> = (0..n)
        .map(|i| VarId(i as u32))
        .filter(|&v| indeg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &c in net.children_of(v) {
            indeg[c.index()] -= 1;
            if indeg[c.index()] == 0 {
                queue.push(c);
            }
        }
    }
    (order.len() == n).then_some(order)
}

impl BayesianNetwork {
    /// A topological order of the variables (parents before children).
    ///
    /// The network is guaranteed acyclic by construction, so this always
    /// succeeds.
    pub fn topological_order(&self) -> Vec<VarId> {
        topological_order(self).expect("networks are validated acyclic at build time")
    }

    /// Variables with no parents.
    pub fn roots(&self) -> Vec<VarId> {
        (0..self.num_vars() as u32)
            .map(VarId)
            .filter(|&v| self.parents_of(v).is_empty())
            .collect()
    }

    /// Variables with no children.
    pub fn leaves(&self) -> Vec<VarId> {
        (0..self.num_vars() as u32)
            .map(VarId)
            .filter(|&v| self.children_of(v).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::networks::sprinkler;

    #[test]
    fn topo_order_respects_edges() {
        let net = sprinkler();
        let order = net.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for i in 0..net.num_vars() as u32 {
            let v = evprop_potential::VarId(i);
            for &c in net.children_of(v) {
                assert!(pos[v.index()] < pos[c.index()]);
            }
        }
    }

    #[test]
    fn roots_and_leaves() {
        let net = sprinkler();
        assert_eq!(net.roots().len(), 1); // Cloudy
        assert_eq!(net.leaves().len(), 1); // WetGrass
    }
}
