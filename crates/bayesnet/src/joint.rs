//! Brute-force joint-distribution oracle.
//!
//! `P(V) = Π_j P(A_j | pa(A_j))` (§2). Exponential in the number of
//! variables — usable only for small networks — but exact, which makes it
//! the ground truth every parallel engine is tested against.

use crate::{BayesianNetwork, Result};
use evprop_potential::{Domain, EvidenceSet, PotentialTable, VarId};

/// The full joint distribution of a (small) Bayesian network.
///
/// # Example
///
/// ```
/// use evprop_bayesnet::{networks, JointDistribution};
/// use evprop_potential::{EvidenceSet, VarId};
///
/// let net = networks::sprinkler();
/// let joint = JointDistribution::of(&net).unwrap();
/// let ev = EvidenceSet::new();
/// let p_rain = joint.marginal(VarId(2), &ev).unwrap();
/// assert!((p_rain.sum() - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct JointDistribution {
    table: PotentialTable,
}

impl JointDistribution {
    /// Multiplies all CPTs into the joint table.
    ///
    /// # Errors
    ///
    /// Propagates potential-table errors (cardinality conflicts).
    ///
    /// # Panics
    ///
    /// May exhaust memory for networks whose joint state space does not
    /// fit; keep inputs small (≤ ~20 binary variables).
    pub fn of(net: &BayesianNetwork) -> Result<Self> {
        let dom = Domain::new(net.vars().to_vec())?;
        let mut table = PotentialTable::ones(dom);
        for cpt in net.cpts() {
            table.multiply_assign(cpt.table())?;
        }
        Ok(JointDistribution { table })
    }

    /// The joint table itself.
    pub fn table(&self) -> &PotentialTable {
        &self.table
    }

    /// Exact posterior marginal `P(var | evidence)`, normalized. Hard
    /// evidence zeroes inconsistent entries; soft evidence multiplies the
    /// joint by each likelihood once.
    ///
    /// # Errors
    ///
    /// Propagates potential-table errors (unknown variable, bad state).
    pub fn marginal(&self, var: VarId, evidence: &EvidenceSet) -> Result<PotentialTable> {
        let t = self.restricted(evidence)?;
        let sub = t.domain().project(&[var]);
        let mut m = t.marginalize(&sub)?;
        m.normalize();
        Ok(m)
    }

    /// Probability (or likelihood-weighted mass) of the evidence, `P(e)`.
    ///
    /// # Errors
    ///
    /// Propagates potential-table errors.
    pub fn probability_of_evidence(&self, evidence: &EvidenceSet) -> Result<f64> {
        Ok(self.restricted(evidence)?.sum())
    }

    fn restricted(&self, evidence: &EvidenceSet) -> Result<PotentialTable> {
        let mut t = self.table.clone();
        evidence.absorb_into(&mut t)?;
        for lk in evidence.soft() {
            lk.apply_to(&mut t)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks::{sprinkler, wet_grass_vars};

    #[test]
    fn joint_sums_to_one() {
        let net = sprinkler();
        let j = JointDistribution::of(&net).unwrap();
        assert!((j.table().sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sprinkler_classic_query() {
        // Classic textbook value: P(Rain=T | WetGrass=T) ≈ 0.7079 for the
        // Russell–Norvig parameterization used by `networks::sprinkler`.
        let net = sprinkler();
        let (_c, _s, rain, wet) = wet_grass_vars();
        let j = JointDistribution::of(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(wet, 1);
        let m = j.marginal(rain, &ev).unwrap();
        assert!((m.data()[1] - 0.7079).abs() < 5e-4, "got {}", m.data()[1]);
    }

    #[test]
    fn evidence_probability_decreases_with_more_evidence() {
        let net = sprinkler();
        let (_c, s, rain, wet) = wet_grass_vars();
        let j = JointDistribution::of(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(wet, 1);
        let p1 = j.probability_of_evidence(&ev).unwrap();
        ev.observe(rain, 1);
        let p2 = j.probability_of_evidence(&ev).unwrap();
        ev.observe(s, 1);
        let p3 = j.probability_of_evidence(&ev).unwrap();
        assert!(p1 > p2 && p2 > p3 && p3 > 0.0);
    }
}
