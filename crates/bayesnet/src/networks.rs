//! A library of classic Bayesian networks used by examples and tests.
//!
//! State convention: state `0` = false/low, state `1` = true/high (and
//! higher states where applicable).

use crate::{BayesianNetwork, BayesianNetworkBuilder};
use evprop_potential::VarId;

/// The Russell–Norvig sprinkler network:
/// `Cloudy → {Sprinkler, Rain} → WetGrass`.
///
/// Variable ids (dense, in order): 0 Cloudy, 1 Sprinkler, 2 Rain,
/// 3 WetGrass. See [`wet_grass_vars`].
pub fn sprinkler() -> BayesianNetwork {
    let mut b = BayesianNetworkBuilder::new();
    let cloudy = b.add_variable(2);
    let sprinkler = b.add_variable(2);
    let rain = b.add_variable(2);
    let wet = b.add_variable(2);
    b.set_prior(cloudy, vec![0.5, 0.5]).unwrap();
    b.set_cpt(sprinkler, &[cloudy], vec![vec![0.5, 0.5], vec![0.9, 0.1]])
        .unwrap();
    b.set_cpt(rain, &[cloudy], vec![vec![0.8, 0.2], vec![0.2, 0.8]])
        .unwrap();
    b.set_cpt(
        wet,
        &[sprinkler, rain],
        vec![
            vec![1.0, 0.0],   // S=F, R=F
            vec![0.1, 0.9],   // S=F, R=T
            vec![0.1, 0.9],   // S=T, R=F
            vec![0.01, 0.99], // S=T, R=T
        ],
    )
    .unwrap();
    b.build().expect("sprinkler network is well-formed")
}

/// Ids of the sprinkler network's variables:
/// `(cloudy, sprinkler, rain, wet_grass)`.
pub fn wet_grass_vars() -> (VarId, VarId, VarId, VarId) {
    (VarId(0), VarId(1), VarId(2), VarId(3))
}

/// The Lauritzen–Spiegelhalter "Asia" chest-clinic network — the
/// motivating example of the junction-tree paper the PACT'09 work builds
/// on (reference \[1\] there).
///
/// Variable ids: 0 asia, 1 tub, 2 smoke, 3 lung, 4 bronc, 5 either,
/// 6 xray, 7 dysp. See [`asia_vars`].
pub fn asia() -> BayesianNetwork {
    let mut b = BayesianNetworkBuilder::new();
    let asia = b.add_variable(2);
    let tub = b.add_variable(2);
    let smoke = b.add_variable(2);
    let lung = b.add_variable(2);
    let bronc = b.add_variable(2);
    let either = b.add_variable(2);
    let xray = b.add_variable(2);
    let dysp = b.add_variable(2);
    b.set_prior(asia, vec![0.99, 0.01]).unwrap();
    b.set_cpt(tub, &[asia], vec![vec![0.99, 0.01], vec![0.95, 0.05]])
        .unwrap();
    b.set_prior(smoke, vec![0.5, 0.5]).unwrap();
    b.set_cpt(lung, &[smoke], vec![vec![0.99, 0.01], vec![0.9, 0.1]])
        .unwrap();
    b.set_cpt(bronc, &[smoke], vec![vec![0.7, 0.3], vec![0.4, 0.6]])
        .unwrap();
    // either = tub OR lung, deterministic
    b.set_cpt(
        either,
        &[tub, lung],
        vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
        ],
    )
    .unwrap();
    b.set_cpt(xray, &[either], vec![vec![0.95, 0.05], vec![0.02, 0.98]])
        .unwrap();
    b.set_cpt(
        dysp,
        &[either, bronc],
        vec![
            vec![0.9, 0.1], // E=F, B=F
            vec![0.2, 0.8], // E=F, B=T
            vec![0.3, 0.7], // E=T, B=F
            vec![0.1, 0.9], // E=T, B=T
        ],
    )
    .unwrap();
    b.build().expect("asia network is well-formed")
}

/// Ids of the Asia network's variables, in declaration order:
/// `(asia, tub, smoke, lung, bronc, either, xray, dysp)`.
#[allow(clippy::type_complexity)]
pub fn asia_vars() -> (VarId, VarId, VarId, VarId, VarId, VarId, VarId, VarId) {
    (
        VarId(0),
        VarId(1),
        VarId(2),
        VarId(3),
        VarId(4),
        VarId(5),
        VarId(6),
        VarId(7),
    )
}

/// Koller–Friedman "student" network with a 3-state grade:
/// `Difficulty → Grade ← Intelligence; Intelligence → SAT; Grade → Letter`.
///
/// Variable ids: 0 difficulty, 1 intelligence, 2 grade (3 states),
/// 3 sat, 4 letter.
pub fn student() -> BayesianNetwork {
    let mut b = BayesianNetworkBuilder::new();
    let diff = b.add_variable(2);
    let intel = b.add_variable(2);
    let grade = b.add_variable(3);
    let sat = b.add_variable(2);
    let letter = b.add_variable(2);
    b.set_prior(diff, vec![0.6, 0.4]).unwrap();
    b.set_prior(intel, vec![0.7, 0.3]).unwrap();
    b.set_cpt(
        grade,
        &[intel, diff],
        vec![
            vec![0.3, 0.4, 0.3],   // i=0, d=0
            vec![0.05, 0.25, 0.7], // i=0, d=1
            vec![0.9, 0.08, 0.02], // i=1, d=0
            vec![0.5, 0.3, 0.2],   // i=1, d=1
        ],
    )
    .unwrap();
    b.set_cpt(sat, &[intel], vec![vec![0.95, 0.05], vec![0.2, 0.8]])
        .unwrap();
    b.set_cpt(
        letter,
        &[grade],
        vec![vec![0.1, 0.9], vec![0.4, 0.6], vec![0.99, 0.01]],
    )
    .unwrap();
    b.build().expect("student network is well-formed")
}

/// A depth-`n` noisy Markov chain of binary variables; handy for
/// controlled-size tests (`n ≥ 1`).
pub fn chain(n: usize) -> BayesianNetwork {
    assert!(n >= 1);
    let mut b = BayesianNetworkBuilder::new();
    let mut prev = b.add_variable(2);
    b.set_prior(prev, vec![0.5, 0.5]).unwrap();
    for _ in 1..n {
        let cur = b.add_variable(2);
        b.set_cpt(cur, &[prev], vec![vec![0.8, 0.2], vec![0.3, 0.7]])
            .unwrap();
        prev = cur;
    }
    b.build().expect("chain network is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JointDistribution;
    use evprop_potential::EvidenceSet;

    #[test]
    fn all_networks_build() {
        assert_eq!(sprinkler().num_vars(), 4);
        assert_eq!(asia().num_vars(), 8);
        assert_eq!(student().num_vars(), 5);
        assert_eq!(chain(10).num_vars(), 10);
    }

    #[test]
    fn asia_smoking_raises_lung_cancer_posterior() {
        let net = asia();
        let (_a, _t, smoke, lung, ..) = asia_vars();
        let j = JointDistribution::of(&net).unwrap();
        let prior = j.marginal(lung, &EvidenceSet::new()).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(smoke, 1);
        let post = j.marginal(lung, &ev).unwrap();
        assert!(post.data()[1] > prior.data()[1]);
        assert!((post.data()[1] - 0.1).abs() < 1e-9); // directly the CPT row
    }

    #[test]
    fn asia_either_is_deterministic_or() {
        let net = asia();
        let (_a, tub, _s, lung, _b, either, ..) = asia_vars();
        let j = JointDistribution::of(&net).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(tub, 0);
        ev.observe(lung, 0);
        let m = j.marginal(either, &ev).unwrap();
        assert!((m.data()[0] - 1.0).abs() < 1e-9);
        ev.observe(lung, 1);
        let m = j.marginal(either, &ev).unwrap();
        assert!((m.data()[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn student_grade_explains_away() {
        let net = student();
        let j = JointDistribution::of(&net).unwrap();
        // Given a good grade (state 0 = best), intelligence is likelier.
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(2), 0);
        let post = j.marginal(VarId(1), &ev).unwrap();
        let prior = j.marginal(VarId(1), &EvidenceSet::new()).unwrap();
        assert!(post.data()[1] > prior.data()[1]);
    }

    #[test]
    fn chain_mixing_toward_stationary() {
        let net = chain(12);
        let j = JointDistribution::of(&net).unwrap();
        let m = j.marginal(VarId(11), &EvidenceSet::new()).unwrap();
        // stationary distribution of the chain's transition matrix is
        // (0.6, 0.4)
        assert!((m.data()[0] - 0.6).abs() < 0.01);
    }
}
