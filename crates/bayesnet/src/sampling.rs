//! Forward (ancestral) sampling — a statistical second oracle and a
//! practical tool for approximate queries on networks too large for
//! exact joints.

use crate::{BayesianNetwork, Result};
use evprop_potential::{PotentialTable, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws joint samples from a Bayesian network in topological order.
///
/// # Example
///
/// ```
/// use evprop_bayesnet::{networks, ForwardSampler};
/// let net = networks::sprinkler();
/// let mut sampler = ForwardSampler::new(&net, 42);
/// let sample = sampler.sample();
/// assert_eq!(sample.len(), 4);
/// ```
#[derive(Debug)]
pub struct ForwardSampler<'a> {
    net: &'a BayesianNetwork,
    order: Vec<VarId>,
    rng: StdRng,
}

impl<'a> ForwardSampler<'a> {
    /// A sampler over `net`, deterministic for a given `seed`.
    pub fn new(net: &'a BayesianNetwork, seed: u64) -> Self {
        ForwardSampler {
            net,
            order: net.topological_order(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One joint sample: a state per variable, indexed by variable id.
    pub fn sample(&mut self) -> Vec<usize> {
        let mut states = vec![0usize; self.net.num_vars()];
        for &v in &self.order {
            let cpt = self.net.cpt(v);
            let dom = cpt.table().domain();
            // assignment over the CPT's canonical domain, child set later
            let mut assignment = vec![0usize; dom.width()];
            for (pos, dv) in dom.vars().iter().enumerate() {
                if dv.id() != v {
                    assignment[pos] = states[dv.id().index()];
                }
            }
            let child_pos = dom.position_of(v).expect("child is in its own CPT domain");
            // inverse-CDF draw over the child's conditional distribution
            let u: f64 = self.rng.gen();
            let mut acc = 0.0;
            let card = self.net.var(v).cardinality();
            let mut drawn = card - 1;
            for s in 0..card {
                assignment[child_pos] = s;
                acc += cpt.table().get(&assignment);
                if u < acc {
                    drawn = s;
                    break;
                }
            }
            states[v.index()] = drawn;
        }
        states
    }

    /// Monte-Carlo estimate of the marginal `P(var)` from `n` samples,
    /// returned as a normalized table over `var`.
    ///
    /// # Errors
    ///
    /// Propagates potential-table construction failures (impossible for
    /// valid networks).
    pub fn estimate_marginal(&mut self, var: VarId, n: usize) -> Result<PotentialTable> {
        let card = self.net.var(var).cardinality();
        let mut counts = vec![0.0f64; card];
        for _ in 0..n {
            counts[self.sample()[var.index()]] += 1.0;
        }
        let dom = evprop_potential::Domain::new(vec![self.net.var(var)])?;
        let mut t = PotentialTable::from_data(dom, counts)?;
        t.normalize();
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{networks, JointDistribution};
    use evprop_potential::EvidenceSet;

    #[test]
    fn deterministic_per_seed() {
        let net = networks::asia();
        let a: Vec<_> = {
            let mut s = ForwardSampler::new(&net, 7);
            (0..50).map(|_| s.sample()).collect()
        };
        let b: Vec<_> = {
            let mut s = ForwardSampler::new(&net, 7);
            (0..50).map(|_| s.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn samples_respect_deterministic_cpts() {
        // "either" is a deterministic OR of tub and lung
        let net = networks::asia();
        let mut s = ForwardSampler::new(&net, 3);
        for _ in 0..200 {
            let x = s.sample();
            assert_eq!(x[5], usize::from(x[1] == 1 || x[3] == 1));
        }
    }

    #[test]
    fn marginal_estimates_converge_to_oracle() {
        let net = networks::sprinkler();
        let joint = JointDistribution::of(&net).unwrap();
        let mut s = ForwardSampler::new(&net, 11);
        for v in 0..4u32 {
            let est = s.estimate_marginal(VarId(v), 20_000).unwrap();
            let exact = joint.marginal(VarId(v), &EvidenceSet::new()).unwrap();
            // 20k samples: standard error ≈ 0.0035; 4σ tolerance
            assert!(
                est.max_abs_diff(&exact) < 0.015,
                "V{v}: {est:?} vs {exact:?}"
            );
        }
    }
}
