//! Error type for Bayesian-network construction and queries.

use evprop_potential::{PotentialError, VarId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a Bayesian network.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum BayesError {
    /// The directed graph contains a cycle (edges must form a DAG, §2).
    CyclicGraph,
    /// A CPT references a variable that was never declared.
    UnknownVariable(VarId),
    /// A variable was declared twice.
    DuplicateVariable(VarId),
    /// A variable is missing its CPT.
    MissingCpt(VarId),
    /// A variable was given more than one CPT.
    DuplicateCpt(VarId),
    /// A CPT row (one parent configuration) does not sum to 1.
    UnnormalizedCpt {
        /// The child variable.
        var: VarId,
        /// Flat index of the offending parent configuration.
        parent_config: usize,
        /// The row sum found.
        sum: f64,
    },
    /// A CPT was supplied with the wrong number of rows or columns.
    CptShapeMismatch {
        /// The child variable.
        var: VarId,
        /// Expected (rows, cols) = (parent configs, child states).
        expected: (usize, usize),
        /// Supplied (rows, cols).
        found: (usize, usize),
    },
    /// An underlying potential-table operation failed.
    Potential(PotentialError),
    /// A BIF file could not be parsed.
    Bif(crate::bif::BifParseError),
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::CyclicGraph => write!(f, "directed edges form a cycle; not a DAG"),
            BayesError::UnknownVariable(v) => write!(f, "variable {v} was never declared"),
            BayesError::DuplicateVariable(v) => write!(f, "variable {v} declared twice"),
            BayesError::MissingCpt(v) => write!(f, "variable {v} has no CPT"),
            BayesError::DuplicateCpt(v) => write!(f, "variable {v} given more than one CPT"),
            BayesError::UnnormalizedCpt {
                var,
                parent_config,
                sum,
            } => write!(
                f,
                "CPT of {var} does not normalize at parent configuration {parent_config} (sum {sum})"
            ),
            BayesError::CptShapeMismatch {
                var,
                expected,
                found,
            } => write!(
                f,
                "CPT of {var} has shape {found:?}, expected {expected:?} (parent configs, states)"
            ),
            BayesError::Potential(e) => write!(f, "potential-table error: {e}"),
            BayesError::Bif(e) => write!(f, "{e}"),
        }
    }
}

impl Error for BayesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BayesError::Potential(e) => Some(e),
            BayesError::Bif(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PotentialError> for BayesError {
    fn from(e: PotentialError) -> Self {
        BayesError::Potential(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = vec![
            BayesError::CyclicGraph,
            BayesError::UnknownVariable(VarId(0)),
            BayesError::DuplicateVariable(VarId(0)),
            BayesError::MissingCpt(VarId(1)),
            BayesError::DuplicateCpt(VarId(1)),
            BayesError::UnnormalizedCpt {
                var: VarId(2),
                parent_config: 0,
                sum: 0.9,
            },
            BayesError::CptShapeMismatch {
                var: VarId(2),
                expected: (2, 2),
                found: (1, 2),
            },
            BayesError::Potential(PotentialError::UnknownVariable(VarId(0))),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_for_potential() {
        let e = BayesError::from(PotentialError::UnknownVariable(VarId(3)));
        assert!(e.source().is_some());
    }
}
