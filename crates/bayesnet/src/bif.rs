//! Reading and writing the **BIF** (Bayesian Interchange Format) text
//! format — the de-facto standard for discrete Bayesian networks, as
//! produced by bnlearn, the bnrepository, and the original Interchange
//! Format specification (Cozman, 1998).
//!
//! Supported constructs:
//!
//! * `network <name> { ... }` header (properties ignored);
//! * `variable <name> { type discrete [ n ] { s1, ..., sn }; }`;
//! * `probability ( child ) { table p1, ..., pn; }` — priors;
//! * `probability ( child | p1, ..., pk ) { (s1, ..., sk) q1, ...; ... }`
//!   — one row per parent configuration, by parent state names;
//! * the flat `table` form for conditionals, with the Interchange Format
//!   ordering: values enumerate (child, parents...) with the **rightmost
//!   variable changing fastest** — i.e. the child varies slowest.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! network rain_demo { }
//! variable rain { type discrete [ 2 ] { no, yes }; }
//! variable grass { type discrete [ 2 ] { dry, wet }; }
//! probability ( rain ) { table 0.8, 0.2; }
//! probability ( grass | rain ) {
//!   (no)  0.9, 0.1;
//!   (yes) 0.2, 0.8;
//! }
//! "#;
//! let bif = evprop_bayesnet::bif::parse(src).unwrap();
//! assert_eq!(bif.network.num_vars(), 2);
//! assert_eq!(bif.var_id("grass").unwrap().index(), 1);
//! assert_eq!(bif.state_index("rain", "yes"), Some(1));
//! ```

use crate::{BayesError, BayesianNetwork, BayesianNetworkBuilder, Result};
use evprop_potential::VarId;
use std::fmt::Write as _;

/// A Bayesian network parsed from BIF, with the name tables needed to
/// address variables and states symbolically.
#[derive(Clone, Debug)]
pub struct BifNetwork {
    /// The parsed network (variable ids follow declaration order).
    pub network: BayesianNetwork,
    /// The network's declared name.
    pub name: String,
    /// Variable names, indexed by `VarId`.
    pub var_names: Vec<String>,
    /// State names per variable, indexed by `VarId` then state.
    pub state_names: Vec<Vec<String>>,
}

impl BifNetwork {
    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Looks up a state index by variable and state name.
    pub fn state_index(&self, var: &str, state: &str) -> Option<usize> {
        let v = self.var_id(var)?;
        self.state_names[v.index()].iter().position(|s| s == state)
    }

    /// The name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_names[var.index()]
    }

    /// The name of a variable's state.
    pub fn state_name(&self, var: VarId, state: usize) -> &str {
        &self.state_names[var.index()][state]
    }
}

/// Parse error with a line number and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BifParseError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BifParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BIF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BifParseError {}

// ----------------------------------------------------------------------
// tokenizer
// ----------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Punct(char), // { } ( ) [ ] , ; |
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    peeked: Option<(Tok, usize)>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
            peeked: None,
        }
    }

    fn err(&self, message: impl Into<String>) -> BifParseError {
        BifParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump_line(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            if c.is_whitespace() {
                self.bump_line(c);
                self.pos += 1;
            } else if c == '/' && bytes.get(self.pos + 1) == Some(&b'/') {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else if c == '/' && bytes.get(self.pos + 1) == Some(&b'*') {
                self.pos += 2;
                while self.pos + 1 < bytes.len()
                    && !(bytes[self.pos] == b'*' && bytes[self.pos + 1] == b'/')
                {
                    self.bump_line(bytes[self.pos] as char);
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(bytes.len());
            } else {
                break;
            }
        }
    }

    fn next_tok(&mut self) -> Option<(Tok, usize)> {
        if let Some(t) = self.peeked.take() {
            return Some(t);
        }
        self.skip_ws_and_comments();
        let bytes = self.src.as_bytes();
        if self.pos >= bytes.len() {
            return None;
        }
        let line = self.line;
        let c = bytes[self.pos] as char;
        if "{}()[],;|".contains(c) {
            self.pos += 1;
            return Some((Tok::Punct(c), line));
        }
        let start = self.pos;
        if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' {
            while self.pos < bytes.len() {
                let d = bytes[self.pos] as char;
                if d.is_ascii_digit() || "eE+-.".contains(d) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            if let Ok(n) = text.parse::<f64>() {
                return Some((Tok::Number(n), line));
            }
            // not a number after all — fall through as identifier
        }
        while self.pos < bytes.len() {
            let d = bytes[self.pos] as char;
            if d.is_whitespace() || "{}()[],;|".contains(d) {
                break;
            }
            self.pos += 1;
        }
        Some((Tok::Ident(self.src[start..self.pos].to_string()), line))
    }

    fn peek(&mut self) -> Option<&Tok> {
        if self.peeked.is_none() {
            self.peeked = self.next_tok();
        }
        self.peeked.as_ref().map(|(t, _)| t)
    }

    fn expect_ident(&mut self) -> std::result::Result<String, BifParseError> {
        match self.next_tok() {
            Some((Tok::Ident(s), _)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_punct(&mut self, c: char) -> std::result::Result<(), BifParseError> {
        match self.next_tok() {
            Some((Tok::Punct(p), _)) if p == c => Ok(()),
            other => Err(self.err(format!("expected '{c}', found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> std::result::Result<f64, BifParseError> {
        match self.next_tok() {
            Some((Tok::Number(n), _)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }
}

// ----------------------------------------------------------------------
// parser
// ----------------------------------------------------------------------

struct RawVariable {
    name: String,
    states: Vec<String>,
}

struct RawProbability {
    child: String,
    parents: Vec<String>,
    /// Rows keyed by parent state names (empty key = `table` form).
    rows: Vec<(Vec<String>, Vec<f64>)>,
    line: usize,
}

/// Parses BIF source text into a [`BifNetwork`].
///
/// # Errors
///
/// [`BifParseError`] (wrapped in [`BayesError::Bif`]) for syntax
/// problems; CPT shape/normalization errors surface as their
/// [`BayesError`] variants.
pub fn parse(src: &str) -> Result<BifNetwork> {
    let mut lx = Lexer::new(src);
    let mut net_name = String::from("unnamed");
    let mut variables: Vec<RawVariable> = Vec::new();
    let mut probabilities: Vec<RawProbability> = Vec::new();

    while let Some(tok) = lx.peek().cloned() {
        match tok {
            Tok::Ident(kw) if kw == "network" => {
                lx.next_tok();
                net_name = lx.expect_ident().map_err(BayesError::Bif)?;
                skip_block(&mut lx).map_err(BayesError::Bif)?;
            }
            Tok::Ident(kw) if kw == "variable" => {
                lx.next_tok();
                variables.push(parse_variable(&mut lx).map_err(BayesError::Bif)?);
            }
            Tok::Ident(kw) if kw == "probability" => {
                lx.next_tok();
                probabilities.push(parse_probability(&mut lx).map_err(BayesError::Bif)?);
            }
            other => {
                return Err(BayesError::Bif(
                    lx.err(format!("expected a declaration, found {other:?}")),
                ))
            }
        }
    }

    assemble(net_name, variables, probabilities)
}

fn skip_block(lx: &mut Lexer<'_>) -> std::result::Result<(), BifParseError> {
    lx.expect_punct('{')?;
    let mut depth = 1;
    while depth > 0 {
        match lx.next_tok() {
            Some((Tok::Punct('{'), _)) => depth += 1,
            Some((Tok::Punct('}'), _)) => depth -= 1,
            Some(_) => {}
            None => return Err(lx.err("unterminated block")),
        }
    }
    Ok(())
}

fn parse_variable(lx: &mut Lexer<'_>) -> std::result::Result<RawVariable, BifParseError> {
    let name = lx.expect_ident()?;
    lx.expect_punct('{')?;
    let kw = lx.expect_ident()?;
    if kw != "type" {
        return Err(lx.err(format!("expected 'type', found '{kw}'")));
    }
    let kind = lx.expect_ident()?;
    if kind != "discrete" {
        return Err(lx.err(format!(
            "only discrete variables are supported, found '{kind}'"
        )));
    }
    lx.expect_punct('[')?;
    let n = lx.expect_number()? as usize;
    lx.expect_punct(']')?;
    lx.expect_punct('{')?;
    let mut states = Vec::with_capacity(n);
    loop {
        states.push(lx.expect_ident()?);
        match lx.next_tok() {
            Some((Tok::Punct(','), _)) => continue,
            Some((Tok::Punct('}'), _)) => break,
            other => return Err(lx.err(format!("expected ',' or '}}', found {other:?}"))),
        }
    }
    lx.expect_punct(';')?;
    lx.expect_punct('}')?;
    if states.len() != n {
        return Err(lx.err(format!(
            "variable '{name}' declares {n} states but lists {}",
            states.len()
        )));
    }
    Ok(RawVariable { name, states })
}

fn parse_probability(lx: &mut Lexer<'_>) -> std::result::Result<RawProbability, BifParseError> {
    let line = lx.line;
    lx.expect_punct('(')?;
    let child = lx.expect_ident()?;
    let mut parents = Vec::new();
    loop {
        match lx.next_tok() {
            Some((Tok::Punct(')'), _)) => break,
            Some((Tok::Punct('|'), _)) | Some((Tok::Punct(','), _)) => {
                parents.push(lx.expect_ident()?);
            }
            other => return Err(lx.err(format!("expected ')', '|' or ',', found {other:?}"))),
        }
    }
    lx.expect_punct('{')?;
    let mut rows = Vec::new();
    loop {
        match lx.next_tok() {
            Some((Tok::Punct('}'), _)) => break,
            Some((Tok::Ident(kw), _)) if kw == "table" => {
                let mut vals = Vec::new();
                loop {
                    vals.push(lx.expect_number()?);
                    match lx.next_tok() {
                        Some((Tok::Punct(','), _)) => continue,
                        Some((Tok::Punct(';'), _)) => break,
                        other => {
                            return Err(lx.err(format!("expected ',' or ';', found {other:?}")))
                        }
                    }
                }
                rows.push((Vec::new(), vals));
            }
            Some((Tok::Punct('('), _)) => {
                let mut key = Vec::new();
                loop {
                    key.push(lx.expect_ident()?);
                    match lx.next_tok() {
                        Some((Tok::Punct(','), _)) => continue,
                        Some((Tok::Punct(')'), _)) => break,
                        other => {
                            return Err(lx.err(format!("expected ',' or ')', found {other:?}")))
                        }
                    }
                }
                let mut vals = Vec::new();
                loop {
                    vals.push(lx.expect_number()?);
                    match lx.next_tok() {
                        Some((Tok::Punct(','), _)) => continue,
                        Some((Tok::Punct(';'), _)) => break,
                        other => {
                            return Err(lx.err(format!("expected ',' or ';', found {other:?}")))
                        }
                    }
                }
                rows.push((key, vals));
            }
            other => return Err(lx.err(format!("expected 'table', '(' or '}}', found {other:?}"))),
        }
    }
    Ok(RawProbability {
        child,
        parents,
        rows,
        line,
    })
}

fn assemble(
    name: String,
    variables: Vec<RawVariable>,
    probabilities: Vec<RawProbability>,
) -> Result<BifNetwork> {
    let mut b = BayesianNetworkBuilder::new();
    let mut var_names = Vec::with_capacity(variables.len());
    let mut state_names = Vec::with_capacity(variables.len());
    for v in &variables {
        if var_names.contains(&v.name) {
            return Err(BayesError::Bif(BifParseError {
                line: 0,
                message: format!("variable '{}' declared twice", v.name),
            }));
        }
        b.add_variable(v.states.len());
        var_names.push(v.name.clone());
        state_names.push(v.states.clone());
    }
    let lookup = |n: &str, line: usize| -> Result<usize> {
        var_names.iter().position(|x| x == n).ok_or_else(|| {
            BayesError::Bif(BifParseError {
                line,
                message: format!("unknown variable '{n}'"),
            })
        })
    };

    for p in probabilities {
        let child_idx = lookup(&p.child, p.line)?;
        let child_card = state_names[child_idx].len();
        let parent_idx: Vec<usize> = p
            .parents
            .iter()
            .map(|n| lookup(n, p.line))
            .collect::<Result<_>>()?;
        let parent_cards: Vec<usize> = parent_idx.iter().map(|&i| state_names[i].len()).collect();
        let n_configs: usize = parent_cards.iter().product();

        let mut cpt_rows: Vec<Option<Vec<f64>>> = vec![None; n_configs];
        for (key, vals) in p.rows {
            if key.is_empty() {
                // `table` form: child varies slowest, rightmost parent fastest
                if vals.len() != n_configs * child_card {
                    return Err(BayesError::Bif(BifParseError {
                        line: p.line,
                        message: format!(
                            "table for '{}' has {} values, expected {}",
                            p.child,
                            vals.len(),
                            n_configs * child_card
                        ),
                    }));
                }
                for (cfg, row) in cpt_rows.iter_mut().enumerate() {
                    let mut dist = Vec::with_capacity(child_card);
                    for s in 0..child_card {
                        dist.push(vals[s * n_configs + cfg]);
                    }
                    *row = Some(dist);
                }
            } else {
                if key.len() != parent_idx.len() {
                    return Err(BayesError::Bif(BifParseError {
                        line: p.line,
                        message: format!(
                            "row for '{}' keys {} parents, expected {}",
                            p.child,
                            key.len(),
                            parent_idx.len()
                        ),
                    }));
                }
                // flat parent-config index, last parent fastest
                let mut cfg = 0usize;
                for ((state_name, &pi), &card) in key.iter().zip(&parent_idx).zip(&parent_cards) {
                    let s = state_names[pi]
                        .iter()
                        .position(|x| x == state_name)
                        .ok_or_else(|| {
                            BayesError::Bif(BifParseError {
                                line: p.line,
                                message: format!(
                                    "unknown state '{state_name}' of '{}'",
                                    var_names[pi]
                                ),
                            })
                        })?;
                    cfg = cfg * card + s;
                }
                if vals.len() != child_card {
                    return Err(BayesError::Bif(BifParseError {
                        line: p.line,
                        message: format!(
                            "row for '{}' has {} values, expected {child_card}",
                            p.child,
                            vals.len()
                        ),
                    }));
                }
                cpt_rows[cfg] = Some(vals);
            }
        }
        let rows: Vec<Vec<f64>> = cpt_rows
            .into_iter()
            .enumerate()
            .map(|(cfg, r)| {
                r.ok_or_else(|| {
                    BayesError::Bif(BifParseError {
                        line: p.line,
                        message: format!(
                            "probability for '{}' is missing parent configuration {cfg}",
                            p.child
                        ),
                    })
                })
            })
            .collect::<Result<_>>()?;
        let parent_ids: Vec<VarId> = parent_idx.iter().map(|&i| VarId(i as u32)).collect();
        b.set_cpt(VarId(child_idx as u32), &parent_ids, rows)?;
    }

    Ok(BifNetwork {
        network: b.build()?,
        name,
        var_names,
        state_names,
    })
}

// ----------------------------------------------------------------------
// writer
// ----------------------------------------------------------------------

/// Serializes a network (with names) back to BIF text. `parse(write(x))`
/// reproduces the same network.
pub fn write(bif: &BifNetwork) -> String {
    let net = &bif.network;
    let mut out = String::new();
    let _ = writeln!(out, "network {} {{\n}}", bif.name);
    for (i, name) in bif.var_names.iter().enumerate() {
        let states = bif.state_names[i].join(", ");
        let _ = writeln!(
            out,
            "variable {name} {{\n  type discrete [ {} ] {{ {states} }};\n}}",
            bif.state_names[i].len()
        );
    }
    for i in 0..net.num_vars() {
        let v = VarId(i as u32);
        let cpt = net.cpt(v);
        let child = &bif.var_names[i];
        if cpt.parents().is_empty() {
            let prior: Vec<String> = (0..net.var(v).cardinality())
                .map(|s| format!("{}", cpt.table().get(&[s])))
                .collect();
            let _ = writeln!(
                out,
                "probability ( {child} ) {{\n  table {};\n}}",
                prior.join(", ")
            );
        } else {
            let parents: Vec<String> = cpt
                .parents()
                .iter()
                .map(|p| bif.var_names[p.id().index()].clone())
                .collect();
            let _ = writeln!(out, "probability ( {child} | {} ) {{", parents.join(", "));
            // enumerate parent configs in user order, last parent fastest
            let cards: Vec<usize> = cpt.parents().iter().map(|p| p.cardinality()).collect();
            let n_cfg: usize = cards.iter().product();
            for cfg in 0..n_cfg {
                // decode cfg
                let mut rem = cfg;
                let mut states = vec![0usize; cards.len()];
                for j in (0..cards.len()).rev() {
                    states[j] = rem % cards[j];
                    rem /= cards[j];
                }
                let key: Vec<String> = states
                    .iter()
                    .zip(cpt.parents())
                    .map(|(&s, p)| bif.state_names[p.id().index()][s].clone())
                    .collect();
                // read P(child = s | this config) from the canonical table
                let dom = cpt.table().domain();
                let mut assignment = vec![0usize; dom.width()];
                let row: Vec<String> = (0..net.var(v).cardinality())
                    .map(|cs| {
                        for (pos, dv) in dom.vars().iter().enumerate() {
                            assignment[pos] = if dv.id() == v {
                                cs
                            } else {
                                let k = cpt
                                    .parents()
                                    .iter()
                                    .position(|p| p.id() == dv.id())
                                    .expect("domain vars are child or parents");
                                states[k]
                            };
                        }
                        format!("{}", cpt.table().get(&assignment))
                    })
                    .collect();
                let _ = writeln!(out, "  ({}) {};", key.join(", "), row.join(", "));
            }
            let _ = writeln!(out, "}}");
        }
    }
    out
}

/// Wraps an anonymous network with generated names (`v0`, `v1`, ...;
/// states `s0`, `s1`, ...), so any [`BayesianNetwork`] can be exported.
pub fn with_generated_names(network: BayesianNetwork, name: &str) -> BifNetwork {
    let var_names: Vec<String> = (0..network.num_vars()).map(|i| format!("v{i}")).collect();
    let state_names: Vec<Vec<String>> = (0..network.num_vars())
        .map(|i| {
            (0..network.var(VarId(i as u32)).cardinality())
                .map(|s| format!("s{s}"))
                .collect()
        })
        .collect();
    BifNetwork {
        network,
        name: name.to_string(),
        var_names,
        state_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{networks, JointDistribution};
    use evprop_potential::EvidenceSet;

    const ASIA_BIF: &str = r#"
// Lauritzen-Spiegelhalter chest clinic, bnlearn-style BIF
network asia { }
variable asia  { type discrete [ 2 ] { no, yes }; }
variable tub   { type discrete [ 2 ] { no, yes }; }
variable smoke { type discrete [ 2 ] { no, yes }; }
variable lung  { type discrete [ 2 ] { no, yes }; }
variable bronc { type discrete [ 2 ] { no, yes }; }
variable either{ type discrete [ 2 ] { no, yes }; }
variable xray  { type discrete [ 2 ] { no, yes }; }
variable dysp  { type discrete [ 2 ] { no, yes }; }
probability ( asia )  { table 0.99, 0.01; }
probability ( smoke ) { table 0.5, 0.5; }
probability ( tub | asia ) {
  (no)  0.99, 0.01;
  (yes) 0.95, 0.05;
}
probability ( lung | smoke ) {
  (no)  0.99, 0.01;
  (yes) 0.9, 0.1;
}
probability ( bronc | smoke ) {
  (no)  0.7, 0.3;
  (yes) 0.4, 0.6;
}
probability ( either | tub, lung ) {
  (no, no)   1.0, 0.0;
  (no, yes)  0.0, 1.0;
  (yes, no)  0.0, 1.0;
  (yes, yes) 0.0, 1.0;
}
probability ( xray | either ) {
  (no)  0.95, 0.05;
  (yes) 0.02, 0.98;
}
probability ( dysp | either, bronc ) {
  (no, no)   0.9, 0.1;
  (no, yes)  0.2, 0.8;
  (yes, no)  0.3, 0.7;
  (yes, yes) 0.1, 0.9;
}
"#;

    #[test]
    fn parses_asia_and_matches_builtin() {
        let bif = parse(ASIA_BIF).unwrap();
        assert_eq!(bif.name, "asia");
        assert_eq!(bif.network.num_vars(), 8);
        let builtin = networks::asia();
        // same joint distribution
        let ja = JointDistribution::of(&bif.network).unwrap();
        let jb = JointDistribution::of(&builtin).unwrap();
        assert!(ja.table().approx_eq(jb.table(), 1e-12));
    }

    #[test]
    fn name_lookups() {
        let bif = parse(ASIA_BIF).unwrap();
        assert_eq!(bif.var_id("dysp"), Some(VarId(7)));
        assert_eq!(bif.state_index("dysp", "yes"), Some(1));
        assert_eq!(bif.var_name(VarId(0)), "asia");
        assert_eq!(bif.state_name(VarId(0), 1), "yes");
        assert_eq!(bif.var_id("nope"), None);
    }

    #[test]
    fn table_form_for_conditionals() {
        // child varies slowest, parent fastest (Interchange Format order)
        let src = r#"
network t { }
variable a { type discrete [ 2 ] { a0, a1 }; }
variable b { type discrete [ 2 ] { b0, b1 }; }
probability ( a ) { table 0.3, 0.7; }
probability ( b | a ) { table 0.9, 0.4, 0.1, 0.6; }
"#;
        let bif = parse(src).unwrap();
        // P(b=b0|a=a0)=0.9, P(b=b0|a=a1)=0.4, P(b=b1|a=a0)=0.1, P(b=b1|a=a1)=0.6
        let cpt = bif.network.cpt(VarId(1));
        assert_eq!(cpt.table().get(&[0, 0]), 0.9); // canonical domain (a, b)? (V0,V1)=(a,b)
        let j = JointDistribution::of(&bif.network).unwrap();
        let mut ev = EvidenceSet::new();
        ev.observe(VarId(0), 1);
        let m = j.marginal(VarId(1), &ev).unwrap();
        assert!((m.data()[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_write_parse() {
        let bif = parse(ASIA_BIF).unwrap();
        let text = write(&bif);
        let again = parse(&text).unwrap();
        let ja = JointDistribution::of(&bif.network).unwrap();
        let jb = JointDistribution::of(&again.network).unwrap();
        assert!(ja.table().approx_eq(jb.table(), 1e-12));
        assert_eq!(bif.var_names, again.var_names);
        assert_eq!(bif.state_names, again.state_names);
    }

    #[test]
    fn generated_names_export() {
        let bif = with_generated_names(networks::student(), "student");
        let text = write(&bif);
        let again = parse(&text).unwrap();
        assert_eq!(again.network.num_vars(), 5);
        assert_eq!(again.var_name(VarId(2)), "v2");
        let ja = JointDistribution::of(&bif.network).unwrap();
        let jb = JointDistribution::of(&again.network).unwrap();
        assert!(ja.table().approx_eq(jb.table(), 1e-12));
    }

    #[test]
    fn errors_are_located() {
        let bad = "network x { }\nvariable y { type discrete [ 2 ] { a, b }; }\nprobability ( z ) { table 1.0; }";
        let err = parse(bad).unwrap_err();
        assert!(err.to_string().contains("unknown variable 'z'"));

        let bad2 = "variable y { type continuous [ 2 ] { a, b }; }";
        assert!(parse(bad2).is_err());

        let bad3 = "probability ( ";
        assert!(parse(bad3).is_err());
    }

    #[test]
    fn missing_parent_config_rejected() {
        let src = r#"
network t { }
variable a { type discrete [ 2 ] { a0, a1 }; }
variable b { type discrete [ 2 ] { b0, b1 }; }
probability ( a ) { table 0.3, 0.7; }
probability ( b | a ) { (a0) 0.9, 0.1; }
"#;
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("missing parent configuration"));
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let src = "/* header */\nnetwork c { } // trailing\nvariable v { type discrete [ 2 ] { x, y }; }\nprobability ( v ) { table 0.5, 0.5; }";
        let bif = parse(src).unwrap();
        assert_eq!(bif.network.num_vars(), 1);
    }
}
