//! Random k-ary junction trees with (N, w, r, k) controls — the
//! substitute for the paper's Bayes Net Toolbox generator.

use evprop_jtree::{JunctionTree, TreeShape};
use evprop_potential::{Domain, PotentialTable, VarId, Variable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four knobs of the paper's workload generator plus structural
/// extras.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeParams {
    /// Number of cliques `N`.
    pub num_cliques: usize,
    /// Clique width `w` (variables per clique).
    pub width: usize,
    /// States per variable `r`.
    pub states: usize,
    /// Clique degree `k`: maximum children per clique. The generator
    /// fills cliques breadth-first with a random child count in
    /// `1..=k` per internal clique, giving trees whose average internal
    /// degree tracks `k` like the BNT trees the paper used.
    pub degree: usize,
    /// Variables shared between a clique and its parent (separator
    /// width); must be in `1..width`.
    pub sep_width: usize,
    /// Generator seed.
    pub seed: u64,
}

impl TreeParams {
    /// Parameters with the paper-style defaults: separator width
    /// `w / 2` (at least 1), seed 0.
    pub fn new(num_cliques: usize, width: usize, states: usize, degree: usize) -> Self {
        TreeParams {
            num_cliques,
            width,
            states,
            degree,
            sep_width: (width / 2).max(1),
            seed: 0,
        }
    }

    /// Overrides the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the separator width (builder-style).
    pub fn with_sep_width(mut self, sep_width: usize) -> Self {
        self.sep_width = sep_width;
        self
    }
}

/// Generates a random junction-tree shape per `params`.
///
/// Construction guarantees the running-intersection property: every
/// clique shares `sep_width` variables with its parent (a random subset
/// of the parent's variables) and introduces `width − sep_width` fresh
/// ones, so each variable's occurrence set is a connected subtree.
///
/// # Panics
///
/// Panics when `width < 2`, `sep_width ∉ 1..width`, `states == 0`,
/// `degree == 0` or `num_cliques == 0`.
pub fn random_tree(params: &TreeParams) -> TreeShape {
    assert!(params.num_cliques > 0, "need at least one clique");
    assert!(params.width >= 2, "cliques need at least two variables");
    assert!(
        params.sep_width >= 1 && params.sep_width < params.width,
        "separator width must be in 1..width"
    );
    assert!(params.states >= 1, "variables need at least one state");
    assert!(params.degree >= 1, "cliques must admit children");

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut next_var = 0u32;
    let mut fresh = |n: usize, rng_states: usize| -> Vec<Variable> {
        let vars = (0..n)
            .map(|j| Variable::new(VarId(next_var + j as u32), rng_states))
            .collect();
        next_var += n as u32;
        vars
    };

    let mut domains =
        vec![Domain::new(fresh(params.width, params.states)).expect("fresh ids are distinct")];
    let mut edges = Vec::with_capacity(params.num_cliques - 1);

    // breadth-first frontier of cliques that may still receive children
    let mut frontier = std::collections::VecDeque::from([0usize]);
    while domains.len() < params.num_cliques {
        let parent = frontier.pop_front().unwrap_or(domains.len() - 1);
        let kids = rng.gen_range(1..=params.degree);
        for _ in 0..kids {
            if domains.len() >= params.num_cliques {
                break;
            }
            // random subset of the parent's variables as the separator
            let parent_vars = domains[parent].vars().to_vec();
            let mut idx: Vec<usize> = (0..parent_vars.len()).collect();
            // partial Fisher–Yates for sep_width picks
            for i in 0..params.sep_width {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut vars: Vec<Variable> = idx[..params.sep_width]
                .iter()
                .map(|&i| parent_vars[i])
                .collect();
            vars.extend(fresh(params.width - params.sep_width, params.states));
            let id = domains.len();
            domains.push(Domain::new(vars).expect("fresh ids are distinct"));
            edges.push((parent, id));
            frontier.push_back(id);
        }
    }

    let shape = TreeShape::new(domains, &edges, 0).expect("generator yields a tree");
    debug_assert!(shape.validate().is_ok());
    shape
}

/// Attaches random strictly-positive potentials (entries uniform in
/// `[0.1, 1)`) to a shape, producing a runnable junction tree.
/// Deterministic for a given seed.
pub fn materialize(shape: &TreeShape, seed: u64) -> JunctionTree {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let potentials: Vec<PotentialTable> = shape
        .domains()
        .iter()
        .map(|d| {
            let data: Vec<f64> = (0..d.size()).map(|_| rng.gen_range(0.1..1.0)).collect();
            PotentialTable::from_data(d.clone(), data).expect("length matches domain")
        })
        .collect();
    JunctionTree::from_parts(shape.clone(), potentials).expect("shape and potentials share domains")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_controls() {
        let p = TreeParams::new(64, 6, 3, 4).with_seed(7);
        let shape = random_tree(&p);
        assert_eq!(shape.num_cliques(), 64);
        shape.validate().unwrap();
        for d in shape.domains() {
            assert_eq!(d.width(), 6);
            assert!(d.vars().iter().all(|v| v.cardinality() == 3));
        }
        for c in (0..64).map(evprop_jtree::CliqueId) {
            assert!(shape.children(c).len() <= 4);
            if shape.parent(c).is_some() {
                assert_eq!(shape.parent_separator(c).width(), 3);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TreeParams::new(40, 5, 2, 3).with_seed(11);
        let a = random_tree(&p);
        let b = random_tree(&p);
        assert_eq!(a.num_cliques(), b.num_cliques());
        for c in (0..40).map(evprop_jtree::CliqueId) {
            assert_eq!(a.domain(c), b.domain(c));
            assert_eq!(a.parent(c), b.parent(c));
        }
        let c = random_tree(&TreeParams::new(40, 5, 2, 3).with_seed(12));
        let same_structure = (0..40)
            .all(|i| a.parent(evprop_jtree::CliqueId(i)) == c.parent(evprop_jtree::CliqueId(i)));
        let same_domains = (0..40)
            .all(|i| a.domain(evprop_jtree::CliqueId(i)) == c.domain(evprop_jtree::CliqueId(i)));
        assert!(!(same_structure && same_domains), "seeds should differ");
    }

    #[test]
    fn degree_one_gives_a_path() {
        let p = TreeParams::new(12, 4, 2, 1).with_seed(0);
        let shape = random_tree(&p);
        assert_eq!(shape.leaves().len(), 1);
    }

    #[test]
    fn materialize_is_deterministic_and_positive() {
        let p = TreeParams::new(10, 4, 2, 2).with_seed(3);
        let shape = random_tree(&p);
        let a = materialize(&shape, 5);
        let b = materialize(&shape, 5);
        for c in (0..10).map(evprop_jtree::CliqueId) {
            assert_eq!(a.potential(c).data(), b.potential(c).data());
            assert!(a.potential(c).data().iter().all(|&v| v > 0.0));
        }
        let c = materialize(&shape, 6);
        assert_ne!(
            a.potential(evprop_jtree::CliqueId(0)).data(),
            c.potential(evprop_jtree::CliqueId(0)).data()
        );
    }

    #[test]
    fn sep_width_bounds_enforced() {
        let p = TreeParams::new(4, 3, 2, 2).with_sep_width(3);
        assert!(std::panic::catch_unwind(|| random_tree(&p)).is_err());
    }
}
