//! The paper's named junction trees and sweep grids.

use crate::{random_tree, TreeParams};
use evprop_jtree::TreeShape;

/// Junction tree 1 (§7): 512 cliques, width 20, binary variables,
/// average clique degree 4. ~1M-entry potential tables; meant for the
/// simulator (materializing it costs ≈ 4 GB like the paper's runs).
pub fn jt1() -> TreeShape {
    random_tree(&TreeParams::new(512, 20, 2, 4).with_seed(0xA1))
}

/// Junction tree 2 (§7): 256 cliques, width 15, ternary variables,
/// average clique degree 4.
pub fn jt2() -> TreeShape {
    random_tree(&TreeParams::new(256, 15, 3, 4).with_seed(0xA2))
}

/// Junction tree 3 (§7): 128 cliques, width 10, ternary variables,
/// average clique degree 2.
pub fn jt3() -> TreeShape {
    random_tree(&TreeParams::new(128, 10, 3, 2).with_seed(0xA3))
}

/// A memory-friendly JT1 stand-in (width 12) for *real* multithreaded
/// execution and wall-clock benches on laptop-class hosts: same
/// structure class, ~4K-entry tables.
pub fn jt1_small() -> TreeShape {
    random_tree(&TreeParams::new(512, 12, 2, 4).with_seed(0xA1))
}

/// Fig. 9(a) grid: vary the number of cliques.
pub const SWEEP_N: [usize; 4] = [128, 256, 512, 1024];

/// Fig. 9(b) grid: vary clique width.
pub const SWEEP_W: [usize; 3] = [10, 15, 20];

/// Fig. 9(c) grid: vary the number of states.
pub const SWEEP_R: [usize; 2] = [2, 3];

/// Fig. 9(d) grid: vary clique degree.
pub const SWEEP_K: [usize; 3] = [2, 4, 8];

/// A Fig. 9 sweep point: JT1's parameters with one knob overridden.
pub fn sweep_point(n: usize, w: usize, r: usize, k: usize) -> TreeShape {
    random_tree(&TreeParams::new(n, w, r, k).with_seed(0xF9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let t1 = jt1();
        assert_eq!(t1.num_cliques(), 512);
        assert_eq!(t1.max_width(), 20);
        let t2 = jt2();
        assert_eq!(t2.num_cliques(), 256);
        assert_eq!(t2.max_width(), 15);
        let t3 = jt3();
        assert_eq!(t3.num_cliques(), 128);
        assert_eq!(t3.max_width(), 10);
    }

    #[test]
    fn presets_are_valid_trees() {
        for shape in [jt1(), jt2(), jt3(), jt1_small()] {
            shape.validate().unwrap();
        }
    }

    #[test]
    fn sweep_points_build() {
        let s = sweep_point(128, 10, 2, 2);
        assert_eq!(s.num_cliques(), 128);
        s.validate().unwrap();
    }
}
