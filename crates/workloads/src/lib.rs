//! Workload generators reproducing the paper's experimental inputs.
//!
//! The paper evaluates on junction trees generated with the MATLAB Bayes
//! Net Toolbox, controlled by four parameters: number of cliques `N`,
//! clique width `w`, variable states `r`, and clique degree `k`. This
//! crate generates trees with exactly those controls:
//!
//! * [`fig4_template`] — the Fig. 4 rerooting-benchmark template: `b + 1`
//!   equal-length branches radiating from a hub, rooted at the end of
//!   branch 0 (so rerooting can halve the critical path);
//! * [`random_tree`] — k-ary junction trees with the (N, w, r, k)
//!   controls, used for Figs. 6, 7, 9;
//! * [`presets`] — the paper's Junction trees 1–3 plus scaled-down
//!   variants sized for real-memory execution;
//! * [`materialize`] — attach random strictly-positive potentials to a
//!   shape, producing a runnable [`JunctionTree`].
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod presets;
mod random;
mod template;

pub use random::{materialize, random_tree, TreeParams};
pub use template::fig4_template;

pub use evprop_jtree::{JunctionTree, TreeShape};
