//! The Fig. 4 junction-tree template used to evaluate rerooting.

use evprop_jtree::TreeShape;
use evprop_potential::{Domain, VarId, Variable};

/// Builds the Fig. 4 template: a hub clique with `b + 1` equal-length
/// chain branches, **rooted at the far end of branch 0**.
///
/// With that root, the critical path spans branch 0 *plus* the longest
/// other branch; Algorithm 1 re-roots at the hub, cutting the critical
/// path to a single branch — the mechanism behind the ≤ 2× speedup of
/// Fig. 5. The paper instantiates `b ∈ {1, 2, 4, 8}` with 512 cliques of
/// 15 binary variables each.
///
/// Adjacent cliques share exactly one variable, so the tree satisfies
/// the running-intersection property by construction; branch lengths
/// differ by at most one clique when `(n_cliques − 1)` is not divisible
/// by `b + 1`.
///
/// # Panics
///
/// Panics if `n_cliques < b + 2` (the hub plus one clique per branch) or
/// `width < 2`, or if `width` is too small to give the hub a distinct
/// shared variable per branch (`width ≥ b + 1`).
pub fn fig4_template(b: usize, n_cliques: usize, width: usize) -> TreeShape {
    let branches = b + 1;
    assert!(width >= 2, "cliques need at least two variables");
    assert!(
        width >= branches,
        "hub width {width} cannot host {branches} distinct separators"
    );
    assert!(
        n_cliques > branches,
        "need at least one clique per branch plus the hub"
    );

    let mut next_var = 0u32;
    let mut fresh = |count: usize| -> Vec<Variable> {
        let vars = (0..count)
            .map(|j| Variable::binary(VarId(next_var + j as u32)))
            .collect();
        next_var += count as u32;
        vars
    };

    // clique 0 = hub
    let hub_vars = fresh(width);
    let mut domains = vec![Domain::new(hub_vars.clone()).expect("fresh ids are distinct")];
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n_cliques - 1);

    // distribute the remaining cliques over the branches, branch 0 first
    // (so it is never shorter than the others)
    let rest = n_cliques - 1;
    let base = rest / branches;
    let extra = rest % branches;
    let mut root = 0usize; // replaced by the end of branch 0 below

    for (branch, &hub_var) in hub_vars.iter().enumerate().take(branches) {
        let len = base + usize::from(branch < extra);
        let mut prev = 0usize; // hub
        let mut shared = hub_var; // hub's variable for this branch
        for _ in 0..len {
            let mut vars = fresh(width - 1);
            vars.push(shared);
            let id = domains.len();
            // the next clique of the chain shares this clique's first
            // fresh variable
            shared = vars[0];
            domains.push(Domain::new(vars).expect("fresh ids are distinct"));
            edges.push((prev, id));
            prev = id;
        }
        if branch == 0 {
            root = prev;
        }
    }

    let shape = TreeShape::new(domains, &edges, root).expect("template construction yields a tree");
    debug_assert!(shape.validate().is_ok());
    shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use evprop_jtree::{critical_path_weight, select_root, select_root_naive, CliqueId};

    #[test]
    fn paper_dimensions() {
        for b in [1usize, 2, 4, 8] {
            let shape = fig4_template(b, 512, 15);
            assert_eq!(shape.num_cliques(), 512);
            assert_eq!(shape.max_width(), 15);
            shape.validate().unwrap();
            // hub has b+1 neighbors
            assert_eq!(shape.degree(CliqueId(0)), b + 1);
        }
    }

    #[test]
    fn rerooting_roughly_halves_critical_path() {
        let shape = fig4_template(1, 512, 8);
        let before = critical_path_weight(&shape);
        let choice = select_root(&shape);
        let ratio = before as f64 / choice.critical_path as f64;
        assert!(
            (1.8..=2.05).contains(&ratio),
            "expected ≈2× reduction, got {ratio}"
        );
    }

    #[test]
    fn algorithm1_reroots_at_hub_region() {
        // the optimal root sits on the branch0–branch1 diameter near the hub
        let shape = fig4_template(4, 101, 6);
        let fast = select_root(&shape);
        let naive = select_root_naive(&shape);
        assert_eq!(fast.critical_path, naive.critical_path);
        // hub itself is the balance point for equal branches
        assert_eq!(fast.root, CliqueId(0));
    }

    #[test]
    fn branch_lengths_balanced() {
        let shape = fig4_template(2, 10, 4);
        // 9 chain cliques over 3 branches → 3 each
        let hub = CliqueId(0);
        for &head in shape.neighbors(hub) {
            // walk away from hub
            let mut len = 1;
            let mut prev = hub;
            let mut cur = head;
            loop {
                let next = shape.neighbors(cur).iter().copied().find(|&x| x != prev);
                match next {
                    Some(n) => {
                        prev = cur;
                        cur = n;
                        len += 1;
                    }
                    None => break,
                }
            }
            assert_eq!(len, 3);
        }
    }

    #[test]
    #[should_panic(expected = "hub width")]
    fn too_many_branches_rejected() {
        let _ = fig4_template(8, 512, 4);
    }
}
