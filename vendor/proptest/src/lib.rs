//! Offline stand-in for the `proptest` crate (API subset, no shrinking).
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`] / [`collection::btree_set`], [`bool::ANY`], the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for a hermetic build:
//!
//! * **No shrinking** — a failing case panics with the case index and
//!   seed; rerunning is deterministic, so the case reproduces exactly.
//! * Values are drawn from a fixed per-case seed sequence, so a test
//!   binary is bit-reproducible run to run.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator for one test case, derived from the case index.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as u128 % (hi as u128 - lo as u128)) as usize
    }
}

/// How a strategy's values are produced (no shrinking: generation only).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// A strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::{BTreeSet, PhantomData, Strategy, TestRng};

    /// An inclusive size bound for generated collections; built from a
    /// fixed `usize`, a `Range<usize>`, or a `RangeInclusive<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                rng.usize_in(self.lo, self.hi + 1)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S: Strategy> {
        elem: S,
        size: SizeRange,
        _marker: PhantomData<S::Value>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // duplicates don't grow the set; bound the attempts so a
            // small element universe can't loop forever, but never
            // return fewer than the minimum size
            let mut attempts = 0usize;
            while set.len() < target && attempts < 64 * target.max(1) {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            while set.len() < self.size.lo {
                set.insert(self.elem.generate(rng));
            }
            set
        }
    }

    /// A `BTreeSet` of values from `elem` with a size drawn from `size`
    /// (best effort when the element universe is small, never below the
    /// minimum).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
            _marker: PhantomData,
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Clone, Copy, Debug)]
pub struct TestCaseReject;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property test, reporting the failing
/// expression (no shrinking: the panic carries the case's seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Discards the current case (it counts as neither pass nor fail) when
/// the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random cases (default 256,
/// override with `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut draw: u64 = 0;
            while passed < cfg.cases {
                // distinct deterministic seed per draw; function name
                // decorrelates sibling tests in the same file
                let seed = draw
                    ^ $crate::__fnv1a(concat!(module_path!(), "::", stringify!($name)));
                draw += 1;
                let mut rng = $crate::TestRng::from_seed(seed);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                // the closure gives `prop_assume!` an early-return target
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::TestCaseReject> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseReject) => {
                        rejected += 1;
                        assert!(
                            rejected < 16 * cfg.cases + 1024,
                            "too many prop_assume! rejections ({} for {} passes)",
                            rejected,
                            passed
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// FNV-1a of a string, used to derive per-test seeds.
#[doc(hidden)]
pub const fn __fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u64..=4, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0usize..5, 2..6),
            s in crate::collection::btree_set(0u32..8, 1..=4),
            (a, b) in (0usize..3).prop_flat_map(|n| (Just(n), n..n + 10)),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(b >= a);
            let _ = flag;
        }

        #[test]
        fn assume_discards(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (1usize..5).prop_map(|n| vec![0u8; n]);
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
