//! Offline stand-in for the `parking_lot` crate (0.12 API subset).
//!
//! The build container has no access to crates.io, so this wraps
//! `std::sync` primitives behind parking_lot's poison-free API: `lock()`
//! returns the guard directly, recovering the data if a previous holder
//! panicked (parking_lot has no poisoning at all; recovering is the
//! closest std equivalent).

#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A guard releasing the mutex on drop. Alias of the std guard so
/// deref/debug behave identically.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's poison-free `lock`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Read guard alias of the std guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard alias of the std guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex (parking_lot signature: mutates the guard in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` when
    /// the wait timed out without a notification (parking_lot returns a
    /// `WaitTimeoutResult`; a bare bool is the subset callers need).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Runs `f` on the guard by value: std's `Condvar::wait` consumes the
/// guard, parking_lot's borrows it, so bridge with a take-and-put.
fn replace_guard<T, F>(slot: &mut MutexGuard<'_, T>, f: F)
where
    F: for<'g> FnOnce(MutexGuard<'g, T>) -> MutexGuard<'g, T>,
{
    /// Aborts if dropped: between the `read` and the `write` below, a
    /// panic would leave `slot` owning an already-dropped guard and
    /// unwinding would double-release the mutex.
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    // SAFETY: exactly one live copy of the guard exists at any point:
    // the value read out is passed to `f` by value, and a fresh guard is
    // written back before the bomb is defused.
    unsafe {
        let bomb = Bomb;
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait(&mut started);
        }
        drop(started);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // No notifier: the wait must report a timeout.
        let (m, cv) = &*pair;
        let mut flag = m.lock();
        assert!(cv.wait_for(&mut flag, Duration::from_millis(10)));
        drop(flag);
        // With a notifier flipping the flag, the wait returns early.
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut flag = m.lock();
        while !*flag {
            if cv.wait_for(&mut flag, Duration::from_secs(5)) {
                panic!("missed the notification");
            }
        }
        drop(flag);
        t.join().unwrap();
    }

    #[test]
    fn lock_recovers_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
