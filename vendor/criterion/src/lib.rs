//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build container has no access to crates.io, so this provides the
//! API surface the workspace benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `Bencher::iter` / `iter_batched` — with a plain
//! wall-clock measurement loop instead of criterion's statistics: each
//! benchmark runs a warmup pass then `sample_size` timed samples and
//! prints the per-iteration mean and min.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted, ignored: every batch is
/// one input here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a group (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean and min per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, running one warmup sample plus `sample_size`
    /// measured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finishes the group (prints nothing further; provided for API
    /// compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        match b.result {
            Some((mean, min)) => {
                let tp = match self.throughput {
                    Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                        format!("  ({:.3} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
                    }
                    Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                        format!(
                            "  ({:.3} MiB/s)",
                            n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                        )
                    }
                    _ => String::new(),
                };
                println!(
                    "{}/{}: mean {:?}, min {:?} over {} samples{}",
                    self.name, id.id, mean, min, self.samples, tp
                );
            }
            None => println!("{}/{}: no measurement taken", self.name, id.id),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        {
            let mut g = self.benchmark_group("bench");
            g.bench_function(id, f);
            g.finish();
        }
        self
    }
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
