//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable,
//! deterministic [`rngs::StdRng`] plus the [`Rng`] / [`SeedableRng`]
//! traits with `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is **xoshiro256++** seeded via SplitMix64 — not the
//! ChaCha12 generator real `rand` uses for `StdRng`, so streams differ
//! from upstream for the same seed. Everything in this workspace only
//! relies on determinism for a fixed seed, never on matching upstream
//! streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their whole value range
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// A range samplable uniformly (the `SampleRange` of real `rand`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching real `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A value of `T` drawn from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// A deterministic generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
