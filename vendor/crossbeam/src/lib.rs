//! Offline stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! The build container has no access to crates.io; the schedulers only
//! use [`utils::Backoff`], so that is all this crate provides, with the
//! same spin-then-yield escalation strategy as upstream.

#![warn(missing_docs)]

/// Utilities for concurrent programming.
pub mod utils {
    use std::cell::Cell;

    /// Exponential backoff for spin loops: busy-spin with `spin_loop`
    /// hints while the wait is short, escalate to `yield_now` once it
    /// is not. Methods take `&self` (interior mutability), matching
    /// upstream crossbeam.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: Cell<u32>,
    }

    /// Spin for `2^step` hint instructions up to this step, …
    const SPIN_LIMIT: u32 = 6;
    /// … then yield the thread; `is_completed` turns true here.
    const YIELD_LIMIT: u32 = 10;

    impl Backoff {
        /// A fresh backoff at the cheapest step.
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        /// Resets to the cheapest step (call after useful work).
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Backs off without yielding: pure spin hints.
        pub fn spin(&self) {
            let step = self.step.get();
            for _ in 0..1u32 << step.min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if step <= SPIN_LIMIT {
                self.step.set(step + 1);
            }
        }

        /// Backs off, yielding the thread once spinning has been
        /// escalated past [`SPIN_LIMIT`].
        pub fn snooze(&self) {
            let step = self.step.get();
            if step <= SPIN_LIMIT {
                for _ in 0..1u32 << step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.set(step + 1);
            }
        }

        /// `true` once backoff has escalated far enough that callers
        /// should park instead of spinning.
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::Backoff;

    #[test]
    fn escalates_to_completed() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin();
    }
}
